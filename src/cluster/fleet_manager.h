// Fleet membership for the elastic control plane (DESIGN.md §16).
//
// The cluster front end used to schedule over a fixed host set; production
// fleets grow, shrink, and lose whole zones. This module holds the pieces of
// that lifecycle that are pure bookkeeping — no coroutines, no clock reads,
// no RNG — so they unit-test in isolation while the Cluster drives them:
//
//   * HostLifecycle: the per-host state machine
//         joining → warming → active → draining → removed
//     A host is schedulable only while active; crashes do NOT advance the
//     lifecycle (a dead active host is still a fleet member and comes back
//     on restart — decommission is the only exit).
//   * FleetPlanner: capacity autoscaling from the same Little's-law signals
//     the warm-pool autoscaler uses. Required concurrency L = λ·S (arrival
//     rate EWMA × service-time EWMA); desired hosts = ⌈L·safety / per-host
//     capacity⌉, clamped to [min_hosts, max_hosts]. Scale-up applies
//     immediately (bounded per tick so a flash crowd ramps instead of
//     stepping); scale-down waits for `scale_down_ticks` consecutive low
//     ticks and then drains one host at a time — capacity mistakes in the
//     down direction cost SLO, so the planner is deliberately asymmetric.
//   * FleetLedger: host-hours accounting (provision → remove intervals), the
//     denominator of cost-per-invocation in bench/elastic_fleet.
//   * PickJoinZone: zone placement for new hosts (least-populated zone,
//     lowest index on ties) so growth keeps the fleet zone-balanced.
#ifndef FIREWORKS_SRC_CLUSTER_FLEET_MANAGER_H_
#define FIREWORKS_SRC_CLUSTER_FLEET_MANAGER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/base/units.h"

namespace fwcluster {

using fwbase::Duration;
using fwbase::SimTime;

// joining: provisioned, workers running, not yet installed/warm.
// warming:  pulling snapshots + preparing warm clones (registry-driven).
// active:  admitted to the scheduler ring; the only schedulable state.
// draining: no new dispatch; queued + inflight work bleeds out.
// removed: torn down (no VMs, no netns, no parked clones); terminal.
enum class HostLifecycle { kJoining, kWarming, kActive, kDraining, kRemoved };

const char* HostLifecycleName(HostLifecycle lifecycle);

struct FleetConfig {
  FleetConfig() {}

  // Capacity autoscaling of the host count. Off by default: the fleet then
  // only changes membership through explicit AddHost/RemoveHost calls.
  bool enabled = false;
  Duration interval = Duration::Seconds(5);
  // Headroom multiplier on the Little's-law concurrency target.
  double safety = 1.3;
  int min_hosts = 1;
  int max_hosts = 64;
  // Concurrent requests one host absorbs at the planner's target utilization
  // (<= 0 falls back to the cluster's workers_per_host).
  int host_capacity = 0;
  // EWMA weight for the observed per-tick arrival rate.
  double rate_ewma_alpha = 0.3;
  // Consecutive below-target ticks before one host is drained.
  int scale_down_ticks = 3;
  // Hosts added in a single tick (ramp bound for flash crowds).
  int max_add_per_tick = 2;
};

// Pure scale-up/scale-down decisions; the Cluster applies them.
class FleetPlanner {
 public:
  FleetPlanner(const FleetConfig& config, int default_host_capacity);

  // Little's-law target host count for a steady rate/service pair.
  int Desired(double rate_per_sec, double service_seconds) const;

  // Feeds one tick's observed arrival rate + service estimate, given
  // `provisioned` non-draining hosts. Returns the membership delta to apply
  // now: +n hosts to add (≤ max_add_per_tick), -1 to drain one, or 0.
  int Step(double observed_rate_per_sec, double service_seconds, int provisioned);

  double rate_ewma() const { return rate_ewma_; }
  const FleetConfig& config() const { return config_; }

 private:
  FleetConfig config_;
  int capacity_;
  double rate_ewma_ = 0.0;
  int low_ticks_ = 0;
};

// Host-hours accounting: a host is paid for from provisioning (AddHost / the
// initial fleet) until removal, whether or not it serves — that is exactly
// what makes an over-provisioned static fleet expensive.
class FleetLedger {
 public:
  void OnProvision(int host, SimTime now);
  void OnRemove(int host, SimTime now);

  // Total paid host time up to `now`: closed intervals plus every still-open
  // one.
  double HostSeconds(SimTime now) const;
  double HostHours(SimTime now) const { return HostSeconds(now) / 3600.0; }
  int provisioned() const { return static_cast<int>(open_.size()); }

 private:
  // Ordered map: iteration feeds HostSeconds, determinism prefers ordered.
  std::map<int, SimTime> open_;
  double closed_seconds_ = 0.0;
};

// Zone for the next host: the zone with the fewest provisioned hosts (lowest
// zone index on ties), so elastic growth stays spread across zones.
int PickJoinZone(const std::vector<int>& hosts_per_zone);

}  // namespace fwcluster

#endif  // FIREWORKS_SRC_CLUSTER_FLEET_MANAGER_H_
