// Multi-host Fireworks deployment on one shared discrete-event simulation.
//
// The Cluster owns N ClusterHosts (FullHost or ModelHost), a front-end
// Scheduler, per-host dispatch queues with a fixed worker-coroutine pool, a
// per-host × per-app warm-pool autoscaler, and cluster-level observability
// (metrics + spans rolled up across hosts).
//
// Request lifecycle: Submit() stamps the request (and its deadline), the
// front end picks a host (scheduler policy over *detected* host health, see
// health.h) and asks the admission controller (admission.h) whether the
// host's bounded dispatch queue can still meet the deadline; admitted
// requests enqueue, the rest are shed fast with kResourceExhausted. A worker
// coroutine runs the invocation on the host and records the outcome. The
// submit→completion latency therefore includes front-end queueing, which is
// where overload shows up in P99.9 — and where admission control converts a
// collapse into a plateau.
//
// Failure semantics (the chaos tests assert these):
//   * Liveness is detected, not known: hosts heartbeat into a phi-accrual
//     FailureDetector; data-path errors (bounced queues, stale-epoch
//     zombies) short-circuit detection. A suspect host is deprioritized, a
//     dead one excluded, and a heartbeat reinstates either.
//   * CrashHost stops the host's heartbeats, bumps its epoch, and drops its
//     parked clones (they lived in host memory). Queued requests are bounced
//     back to the front end. In-flight invocations cannot be cancelled —
//     they drain as zombies whose results are discarded (stale epoch) and
//     the requests are retried on a surviving host, subject to the per-app
//     retry budget, so every accepted request reaches exactly one recorded
//     completion: retried, never duplicated.
//   * PartitionHost makes the host unreachable from the front end for a
//     duration: heartbeats stop arriving (the detector degrades it to
//     suspect, then dead) and responses of in-flight work are held until the
//     partition heals. Partitioned work is delayed, not retried (retrying
//     non-idempotent work during a partition would risk duplicate
//     completions).
//   * Hedging (off by default): after a quantile-based delay, a still-
//     inflight request is re-dispatched to a second host. The first recorded
//     completion wins; the loser is discarded by a terminal check on the
//     request, so completions stay exactly-once (DESIGN.md §11).
//
// Elastic fleet (DESIGN.md §16): membership is no longer fixed. AddHost()
// provisions a cold host that installs every app, pulls snapshots through
// the distribution tier, parks warm clones, and only then joins the
// scheduler ring; RemoveHost() drains a host (no new dispatch, warm pools
// replenished elsewhere, inflight work bled via the zombie-epoch machinery)
// and tears it down with zero leaks. Hosts group into zones; KillZone (or
// the zone_outage fault kind) fails a whole zone at once and the survivors
// absorb the redirected load under admission control. With Config::fleet
// enabled, a capacity autoscaler grows and shrinks the host count from the
// same Little's-law signals the warm-pool autoscaler uses.
#ifndef FIREWORKS_SRC_CLUSTER_CLUSTER_H_
#define FIREWORKS_SRC_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/stats.h"
#include "src/base/status.h"
#include "src/base/units.h"
#include "src/cluster/admission.h"
#include "src/cluster/fleet_manager.h"
#include "src/cluster/health.h"
#include "src/cluster/host.h"
#include "src/cluster/scheduler.h"
#include "src/cluster/slo.h"
#include "src/cluster/snapshot_distribution.h"
#include "src/fault/fault.h"
#include "src/obs/observability.h"
#include "src/simcore/primitives.h"
#include "src/simcore/simulation.h"

namespace fwcluster {

class Cluster {
 public:
  struct Config {
    Config() {}

    SchedulerPolicy policy = SchedulerPolicy::kSnapshotLocality;
    int vnodes_per_host = 64;
    // Dispatch worker coroutines per host: the host-level concurrency cap.
    int workers_per_host = 32;
    // Front-end retries per request (crash recovery), counting the first try.
    int max_attempts = 4;

    // Warm-pool autoscaler: per host × app, target pool size from Little's
    // law over an EWMA of the observed per-app arrival rate at that host.
    bool autoscale = true;
    Duration autoscale_interval = Duration::Seconds(1);
    double autoscale_ewma_alpha = 0.3;
    double autoscale_safety = 1.5;
    int max_pool_per_app = 8;

    // Sampling period for the cluster-wide memory/density gauges, the
    // fleet-wide rollup gauges, and the SLO monitor's bucket ring.
    Duration sample_interval = Duration::Millis(250);

    // Per-app latency SLO + multi-window burn-rate alerting (slo.h). Always
    // on: recording is pure bookkeeping off outcomes the front end already
    // tracks, and benches read the attainment out of the rollup.
    SloConfig slo;

    // --- Overload control & health (DESIGN.md §11) -----------------------
    // Heartbeat-driven failure detection. When false the front end falls
    // back to the omniscient oracle (its own fault bookkeeping) — kept for
    // A/B runs; production-shaped configs leave this on.
    bool health_checks = true;
    HealthConfig health;
    // Bounded dispatch queues + deadline-aware shedding at enqueue.
    AdmissionConfig admission;
    // Per-app token-bucket retry budget (crash-recovery retries spend one
    // token; accepted first attempts deposit retry_budget_ratio).
    bool retry_budget = true;
    double retry_budget_ratio = 0.1;
    double retry_budget_burst = 10.0;
    // Tail-latency hedging: after max(hedge_min_delay, observed
    // hedge_quantile latency), re-dispatch a still-inflight request to a
    // second host. First recorded completion wins.
    bool hedging = false;
    Duration hedge_min_delay = Duration::Millis(20);
    double hedge_quantile = 99.0;
    int64_t hedge_min_samples = 50;
    // The trigger quantile is computed over the last hedge_window completed
    // latencies, so the delay tracks the current tail instead of staying
    // inflated by every overload episode the run has ever seen.
    int64_t hedge_window = 1024;
    // Snapshot distribution tier (DESIGN.md §13): registry + per-host chunk
    // caches + peer fetch + REAP working-set restore. Off by default — every
    // host is then assumed to hold every snapshot, the pre-tier model.
    DistributionConfig distribution;
    // Cluster-level fault injection (heartbeat_loss, host_slowdown,
    // chunk_corruption, registry_unreachable). The
    // default empty plan is inert: no randomness is drawn.
    fwfault::FaultPlan fault_plan;
    uint64_t fault_seed = 777;
    // Mean of the exponential stall injected per host_slowdown trip.
    Duration slow_host_mean_delay = Duration::Millis(100);
    // Drain() aborts after this much simulated time without a new submission
    // or terminal outcome (see Drain()).
    Duration drain_stall_timeout = Duration::Seconds(120);

    // --- Elastic fleet & zones (DESIGN.md §16) ---------------------------
    // Failure domains: initial host i lives in zone i % num_zones; hosts
    // added later join the least-populated zone. One zone = the pre-zone
    // model (everything at zone 0, no spreading).
    int num_zones = 1;
    // With >= 2 zones and the autoscaler on, a ZoneSpreader loop keeps at
    // least one warm clone of every traffic-bearing app in a second zone
    // (per Scheduler::WarmTargets), so a zone outage leaves warm capacity.
    bool zone_spread = true;
    // Warm clones parked per app during a cold host's join warm-up, before
    // the host is admitted to the scheduler ring.
    int join_warm_clones = 1;
    // Host-count autoscaling (fleet_manager.h). Requires host_factory.
    FleetConfig fleet;
    // Builds host number `index` for fleet growth; also used by AddHost()
    // when no host is passed explicitly. Must schedule on `sim`.
    std::function<std::unique_ptr<ClusterHost>(fwsim::Simulation&, int index)>
        host_factory;
    // zone_outage fault kind: polled every check interval; each trip kills
    // one whole zone (round-robin over zones) and restores it after
    // zone_outage_duration.
    Duration zone_outage_check_interval = Duration::Seconds(1);
    Duration zone_outage_duration = Duration::Seconds(5);
  };

  // `hosts` are indexed by position; each must already schedule on `sim`.
  Cluster(fwsim::Simulation& sim, std::vector<std::unique_ptr<ClusterHost>> hosts,
          const Config& config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Installs `fn` on every host (apps can be scheduled anywhere).
  fwsim::Co<Status> InstallAll(const fwlang::FunctionSource& fn);

  // Accepts one invocation request at the current simulated time and returns
  // its request id (1-based, dense). `deadline` is the request's end-to-end
  // latency budget; zero falls back to admission.default_deadline, and zero
  // again means no deadline (shedding then only happens on the queue cap).
  uint64_t Submit(const std::string& fn_name, const std::string& args,
                  Duration deadline = Duration::Zero());

  // Pumps the shared simulation until `until_terminal` requests have reached
  // a terminal state (completed, failed, or shed), then stops background
  // services. Aborts (FW_CHECK) if the run stops making progress — e.g.
  // until_terminal exceeds what the workload will ever submit — instead of
  // spinning forever on the background services' event stream.
  void Drain(uint64_t until_terminal);
  // Drains everything submitted so far.
  void DrainAll() { Drain(submitted_); }
  // Stops the autoscaler/heartbeat/sampler loops so the event queue can
  // empty.
  void Shutdown();

  // --- Fault operations ----------------------------------------------------
  void CrashHost(int host);
  void RestartHost(int host);
  void PartitionHost(int host, Duration duration);
  // Crashes every alive host in `zone` at the current instant (correlated
  // failure — one failure domain lost); RestoreZone restarts every host the
  // outage took down. Permanently removed hosts stay removed.
  void KillZone(int zone);
  void RestoreZone(int zone);

  // --- Elastic fleet (DESIGN.md §16) ---------------------------------------
  // Provisions a cold host into `zone` (or the least-populated zone when
  // negative). The host installs every app, warms its snapshot caches and
  // parks join_warm_clones clones per app, and only then joins the
  // scheduler ring. Returns the new host index immediately; admission
  // happens asynchronously on the simulation. Uses `host` when given, else
  // Config::host_factory.
  int AddHost(std::unique_ptr<ClusterHost> host = nullptr, int zone = -1);
  // Decommissions a host: leaves the scheduler ring at once (no new
  // dispatch), replenishes its warm capacity on ring successors, bleeds
  // inflight work, then tears everything down (VMs, netns, parked clones).
  void RemoveHost(int host);

  HostLifecycle lifecycle(int i) const { return hosts_[i]->lifecycle; }
  int zone_of(int i) const { return hosts_[i]->zone; }
  int num_zones() const { return config_.num_zones; }
  // Hosts currently dispatchable (lifecycle kActive and alive).
  int active_hosts() const;
  // Distinct zones with at least one active alive host.
  int zones_alive() const;
  // Cumulative provisioned host-time (capacity cost) up to now.
  double HostHours() const;

  // --- Results -------------------------------------------------------------
  struct Outcome {
    Outcome() {}

    std::string fn;
    Status status;        // Terminal status of the request.
    int host = -1;        // Host that served the recorded completion.
    int attempts = 1;     // Dispatch attempts (1 = no retry).
    Duration latency;     // Submit → recorded completion.
    Duration startup;
    Duration exec;
    bool warm_hit = false;
    // Guest-minted request id (DESIGN.md §15). 0 when the host model does not
    // run a real guest (ModelHost fabricates results without exec stats).
    uint64_t request_id = 0;
    uint64_t completions = 0;  // Recorded completions; exactly-once ⇒ 1.
  };

  struct Rollup {
    Rollup() {}

    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t retries = 0;
    uint64_t zombie_discards = 0;
    uint64_t warm_hits = 0;
    // Overload control & health (failed includes shed + expired).
    uint64_t shed = 0;             // Rejected at enqueue (admission).
    uint64_t expired = 0;          // Deadline already blown at dequeue.
    uint64_t retry_budget_denied = 0;
    uint64_t hedges = 0;           // Hedge copies dispatched.
    uint64_t hedge_wins = 0;       // Completions recorded from a hedge copy.
    uint64_t hedge_discards = 0;   // Surplus copies dropped post-terminal.
    uint64_t suspects = 0;         // alive→suspect transitions.
    uint64_t detector_deaths = 0;  // →dead transitions (phi or data-path).
    uint64_t reinstated = 0;       // suspect/dead→alive (heartbeat).
    uint64_t brownout_discards = 0;  // Warm clones shed under pressure.
    fwbase::SampleStats latency_ms;     // Completed requests only.
    fwbase::SampleStats startup_ms;
    double peak_pss_bytes = 0.0;
    uint64_t peak_live_vms = 0;
    // SLO health (slo.h): a request is "good" when it completes OK within
    // Config::slo.target; attainment is good/total across every terminal
    // outcome, worst_attainment the minimum per-app value.
    uint64_t slo_total = 0;
    uint64_t slo_good = 0;
    uint64_t slo_alerts = 0;
    double slo_attainment = 1.0;
    double slo_worst_attainment = 1.0;
    // Elastic fleet (zero in a static single-zone deployment).
    uint64_t hosts_added = 0;    // AddHost() provisions (manual + autoscaled).
    uint64_t hosts_removed = 0;  // RemoveHost() decommissions.
    uint64_t zone_outages = 0;   // zone_outage fault trips.
    double host_hours = 0.0;     // Provisioned host-time at rollup time.
    // Snapshot distribution tier counters (zero when the tier is disabled).
    DistributionStats distribution;
  };

  // Outcome of request `id` (valid once terminal).
  const Outcome& outcome(uint64_t id) const;
  uint64_t submitted() const { return submitted_; }
  uint64_t terminal() const { return completed_ + failed_; }
  Rollup ComputeRollup() const;

  // Order-insensitive digest of every terminal outcome (id, host, attempts,
  // latency): equal digests ⇒ the two runs scheduled and timed identically.
  uint64_t OutcomeDigest() const;

  ClusterHost& host(int i) { return *hosts_[i]->host; }
  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  // Ground truth (the fault bookkeeping), not the detector's belief; tests
  // compare the two.
  bool alive(int i) const { return hosts_[i]->alive; }
  // The failure detector's view (only meaningful with health_checks on).
  const FailureDetector& detector() const { return *health_; }
  // Cluster-level observability (per-host metrics live on each FullHost's
  // own HostEnv). Enable obs().tracer() for cluster spans, obs().profiler()
  // for sim/wall hot-scope attribution (the ctor hooks it into the shared
  // Simulation's dispatch path).
  fwobs::Observability& obs() { return obs_; }
  // SLO attainment + burn-rate alerting state (read-only; fed internally).
  const SloMonitor& slo() const { return slo_; }
  // The snapshot distribution tier; nullptr when Config::distribution is
  // disabled.
  const SnapshotDistribution* distribution() const { return distribution_.get(); }

 private:
  struct Request {
    uint64_t id = 0;
    std::string fn;
    std::string args;
    int attempts = 1;
    fwbase::SimTime submitted;
    // Absolute deadline (Max = none): admission sheds against it at enqueue,
    // workers drop against it at dequeue.
    fwbase::SimTime deadline = fwbase::SimTime::Max();
    // True for the second copy of a hedged request: its failures are dropped
    // silently (the primary drives retries and terminal failure).
    bool hedge = false;
  };

  struct HostState {
    std::unique_ptr<ClusterHost> host;
    std::unique_ptr<fwsim::Channel<Request>> queue;
    bool alive = true;
    uint64_t epoch = 0;
    // Failure domain (fixed at provision time) and lifecycle stage
    // (DESIGN.md §16). Only kActive hosts take new dispatch; the scheduler
    // ring holds exactly the kActive set.
    int zone = 0;
    HostLifecycle lifecycle = HostLifecycle::kActive;
    fwbase::SimTime partitioned_until;
    int64_t inflight = 0;  // Dispatched and not yet terminal.
    // Autoscaler state: arrivals since the last tick and the rate EWMA,
    // per app (ordered maps: tick iteration order is part of determinism).
    std::map<std::string, uint64_t> arrivals;
    std::map<std::string, double> rate_ewma;
    // Clone preparations currently in flight (so a slow prepare is not
    // double-counted into the next tick's deficit).
    std::map<std::string, int> preparing;
    // EWMA of observed PrepareClone wall time, for the Little's-law target.
    double prepare_seconds_ewma = 0.05;
  };

  // Non-const: consulting host views re-evaluates phi (suspect/dead
  // transitions happen at observation time, as they would in a control
  // plane polling its detector).
  std::vector<HostView> Views();
  // True once the request has a recorded terminal outcome; the losing copy
  // of a hedged pair checks this before recording anything.
  bool Terminal(uint64_t id) const { return outcomes_[id - 1].completions > 0; }
  // Front-end placement; records a failed outcome when no host is available
  // or admission sheds the request. `exclude_host` (>= 0) is skipped when
  // any other alive host exists — retries avoid the host that just failed,
  // hedges avoid the primary's host.
  void Dispatch(Request req, int exclude_host = -1);
  // Retry after a crash bounce / zombie discard: spends retry budget,
  // respects max_attempts.
  void RetryRequest(Request req, int failed_host);
  void RecordFailure(const Request& req, Status status);
  void RecordCompletion(const Request& req, const fwcore::InvocationResult& result,
                        int host_index, bool warm_hit);
  // Data-path death evidence for the detector + transition bookkeeping.
  void ReportHostFailure(int host_index);
  void ApplyTransition(int host_index, HealthTransition transition);
  double PssFraction(int host_index) const;
  // Quantile-based hedge trigger delay (hedge_min_delay until enough
  // completions have been observed).
  Duration HedgeDelay() const;
  fwsim::Co<void> Worker(int host_index);
  fwsim::Co<void> Heartbeater(int host_index);
  fwsim::Co<void> Hedger(uint64_t id, std::string fn, std::string args,
                         fwbase::SimTime submitted, fwbase::SimTime deadline);
  fwsim::Co<void> Autoscaler(int host_index);
  // One concurrent clone preparation; discards the clone if the host crashed
  // while it was being prepared (its memory is gone).
  fwsim::Co<void> PrepareOne(int host_index, std::string app, uint64_t epoch);
  fwsim::Co<void> Sampler();
  // Whether host i may take new dispatch (lifecycle kActive; liveness is the
  // detector's call, not this one's).
  bool Schedulable(int host_index) const {
    return hosts_[host_index]->lifecycle == HostLifecycle::kActive;
  }
  // Installs every app + one state-machine coroutine per elastic concern.
  // JoinWarmup: cold host → install apps → snapshot fetch + warm clones →
  // admit to ring (kJoining → kWarming → kActive).
  fwsim::Co<void> JoinWarmup(int host_index, uint64_t epoch);
  // DrainAndRemove: replenish warm capacity elsewhere, wait out inflight,
  // tear down (kDraining → kRemoved).
  fwsim::Co<void> DrainAndRemove(int host_index);
  // Keeps every traffic-bearing app's warm capacity spread over >= 2 zones
  // (gated: only spawned with num_zones > 1, zone_spread, and autoscale).
  fwsim::Co<void> ZoneSpreader();
  // Host-count autoscaler (gated on Config::fleet.enabled + host_factory).
  fwsim::Co<void> FleetAutoscaler();
  // Polls the fault plan for zone_outage trips (gated on the plan).
  fwsim::Co<void> ZoneOutageLoop();
  fwsim::Co<void> RestoreZoneAfter(int zone, fwbase::Duration delay);

  fwsim::Simulation& sim_;
  Config config_;
  fwobs::Observability obs_;
  SloMonitor slo_;
  fwobs::ProfScopeId dispatch_scope_ = 0;
  fwobs::ProfScopeId invoke_scope_ = 0;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<FailureDetector> health_;
  AdmissionController admission_;
  RetryBudget retry_budget_;
  fwfault::FaultInjector injector_;
  std::unique_ptr<SnapshotDistribution> distribution_;
  // Heap-allocated so references held across AddHost() stay stable: worker
  // and autoscaler coroutines bind HostState& for their whole lifetime, and
  // push_back only moves the unique_ptrs.
  std::vector<std::unique_ptr<HostState>> hosts_;
  std::vector<std::string> installed_;  // Install order (autoscaler iteration).
  // Copies of every installed function, so a host provisioned after
  // InstallAll can run the same install sequence during its join warm-up.
  std::vector<fwlang::FunctionSource> installed_sources_;
  bool running_ = true;

  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  uint64_t retries_ = 0;
  uint64_t zombie_discards_ = 0;
  uint64_t shed_ = 0;
  uint64_t expired_ = 0;
  uint64_t retry_budget_denied_ = 0;
  uint64_t hedges_ = 0;
  uint64_t hedge_wins_ = 0;
  uint64_t hedge_discards_ = 0;
  uint64_t suspects_ = 0;
  uint64_t detector_deaths_ = 0;
  uint64_t reinstated_ = 0;
  uint64_t brownout_discards_ = 0;
  // Elastic fleet bookkeeping.
  uint64_t hosts_added_ = 0;
  uint64_t hosts_removed_ = 0;
  uint64_t zone_outages_ = 0;
  std::unique_ptr<FleetPlanner> fleet_planner_;  // Only with fleet.enabled.
  FleetLedger fleet_ledger_;
  // Cluster-level Little's-law signals for the fleet planner: arrivals since
  // the last fleet tick and an EWMA of observed service time (the same
  // signal the admission controller keeps per host, aggregated).
  uint64_t fleet_tick_arrivals_ = 0;
  double service_seconds_ewma_ = 0.05;
  // Per-app arrivals since the last ZoneSpreader tick, and the rate EWMAs it
  // maintains (ordered: iteration order is part of determinism).
  std::map<std::string, uint64_t> spread_arrivals_;
  std::map<std::string, double> spread_rate_ewma_;
  std::vector<Outcome> outcomes_;  // Indexed by request id - 1.
  std::vector<int> primary_host_;  // Last host the primary copy went to.
  std::vector<uint8_t> hedged_;    // 1 once a hedge copy was dispatched.
  // Ring of the most recent completed latencies, feeding HedgeDelay(). The
  // hedge trigger must track the *current* tail: a cumulative quantile stays
  // poisoned by a past overload episode long after the fleet recovers,
  // pinning the delay above any real straggler so hedges never fire.
  std::vector<double> recent_latency_ms_;
  size_t recent_latency_next_ = 0;
  fwbase::SampleStats latency_ms_;
  fwbase::SampleStats startup_ms_;
  double peak_pss_bytes_ = 0.0;
  uint64_t peak_live_vms_ = 0;
};

}  // namespace fwcluster

#endif  // FIREWORKS_SRC_CLUSTER_CLUSTER_H_
