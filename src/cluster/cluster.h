// Multi-host Fireworks deployment on one shared discrete-event simulation.
//
// The Cluster owns N ClusterHosts (FullHost or ModelHost), a front-end
// Scheduler, per-host dispatch queues with a fixed worker-coroutine pool, a
// per-host × per-app warm-pool autoscaler, and cluster-level observability
// (metrics + spans rolled up across hosts).
//
// Request lifecycle: Submit() stamps the request, the front end picks a host
// (scheduler policy over live host views) and enqueues it on that host's
// dispatch queue; a worker coroutine runs the invocation on the host and
// records the outcome. The submit→completion latency therefore includes
// front-end queueing, which is where overload shows up in P99.9.
//
// Failure semantics (the chaos tests assert these):
//   * CrashHost marks the host dead, bumps its epoch, and drops its parked
//     clones (they lived in host memory). Queued requests are bounced back to
//     the front end. In-flight invocations cannot be cancelled — they drain
//     as zombies whose results are discarded (stale epoch) and the requests
//     are retried on a surviving host, so every accepted request reaches
//     exactly one recorded completion: retried, never duplicated.
//   * PartitionHost makes the host unreachable from the front end for a
//     duration: the scheduler skips it and responses of in-flight work are
//     held until the partition heals. Partitioned work is delayed, not
//     retried (retrying non-idempotent work during a partition would risk
//     duplicate completions).
#ifndef FIREWORKS_SRC_CLUSTER_CLUSTER_H_
#define FIREWORKS_SRC_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/stats.h"
#include "src/base/status.h"
#include "src/base/units.h"
#include "src/cluster/host.h"
#include "src/cluster/scheduler.h"
#include "src/obs/observability.h"
#include "src/simcore/primitives.h"
#include "src/simcore/simulation.h"

namespace fwcluster {

class Cluster {
 public:
  struct Config {
    Config() {}

    SchedulerPolicy policy = SchedulerPolicy::kSnapshotLocality;
    int vnodes_per_host = 64;
    // Dispatch worker coroutines per host: the host-level concurrency cap.
    int workers_per_host = 32;
    // Front-end retries per request (crash recovery), counting the first try.
    int max_attempts = 4;

    // Warm-pool autoscaler: per host × app, target pool size from Little's
    // law over an EWMA of the observed per-app arrival rate at that host.
    bool autoscale = true;
    Duration autoscale_interval = Duration::Seconds(1);
    double autoscale_ewma_alpha = 0.3;
    double autoscale_safety = 1.5;
    int max_pool_per_app = 8;

    // Sampling period for the cluster-wide memory/density gauges.
    Duration sample_interval = Duration::Millis(250);
  };

  // `hosts` are indexed by position; each must already schedule on `sim`.
  Cluster(fwsim::Simulation& sim, std::vector<std::unique_ptr<ClusterHost>> hosts,
          const Config& config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Installs `fn` on every host (apps can be scheduled anywhere).
  fwsim::Co<Status> InstallAll(const fwlang::FunctionSource& fn);

  // Accepts one invocation request at the current simulated time and returns
  // its request id (1-based, dense).
  uint64_t Submit(const std::string& fn_name, const std::string& args);

  // Pumps the shared simulation until `until_terminal` requests have reached
  // a terminal state (completed or failed), then stops background services.
  void Drain(uint64_t until_terminal);
  // Drains everything submitted so far.
  void DrainAll() { Drain(submitted_); }
  // Stops the autoscaler/sampler loops so the event queue can empty.
  void Shutdown();

  // --- Fault operations ----------------------------------------------------
  void CrashHost(int host);
  void RestartHost(int host);
  void PartitionHost(int host, Duration duration);

  // --- Results -------------------------------------------------------------
  struct Outcome {
    Outcome() {}

    std::string fn;
    Status status;        // Terminal status of the request.
    int host = -1;        // Host that served the recorded completion.
    int attempts = 1;     // Dispatch attempts (1 = no retry).
    Duration latency;     // Submit → recorded completion.
    Duration startup;
    Duration exec;
    bool warm_hit = false;
    uint64_t completions = 0;  // Recorded completions; exactly-once ⇒ 1.
  };

  struct Rollup {
    Rollup() {}

    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t retries = 0;
    uint64_t zombie_discards = 0;
    uint64_t warm_hits = 0;
    fwbase::SampleStats latency_ms;     // Completed requests only.
    fwbase::SampleStats startup_ms;
    double peak_pss_bytes = 0.0;
    uint64_t peak_live_vms = 0;
  };

  // Outcome of request `id` (valid once terminal).
  const Outcome& outcome(uint64_t id) const;
  uint64_t submitted() const { return submitted_; }
  uint64_t terminal() const { return completed_ + failed_; }
  Rollup ComputeRollup() const;

  // Order-insensitive digest of every terminal outcome (id, host, attempts,
  // latency): equal digests ⇒ the two runs scheduled and timed identically.
  uint64_t OutcomeDigest() const;

  ClusterHost& host(int i) { return *hosts_[i].host; }
  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  bool alive(int i) const { return hosts_[i].alive; }
  // Cluster-level observability (per-host metrics live on each FullHost's
  // own HostEnv). Enable obs().tracer() for cluster spans.
  fwobs::Observability& obs() { return obs_; }

 private:
  struct Request {
    uint64_t id = 0;
    std::string fn;
    std::string args;
    int attempts = 1;
    fwbase::SimTime submitted;
  };

  struct HostState {
    std::unique_ptr<ClusterHost> host;
    std::unique_ptr<fwsim::Channel<Request>> queue;
    bool alive = true;
    uint64_t epoch = 0;
    fwbase::SimTime partitioned_until;
    int64_t inflight = 0;  // Dispatched and not yet terminal.
    // Autoscaler state: arrivals since the last tick and the rate EWMA,
    // per app (ordered maps: tick iteration order is part of determinism).
    std::map<std::string, uint64_t> arrivals;
    std::map<std::string, double> rate_ewma;
    // Clone preparations currently in flight (so a slow prepare is not
    // double-counted into the next tick's deficit).
    std::map<std::string, int> preparing;
    // EWMA of observed PrepareClone wall time, for the Little's-law target.
    double prepare_seconds_ewma = 0.05;
  };

  std::vector<HostView> Views() const;
  // Front-end placement; records a failed outcome when no host is available
  // or the retry budget is exhausted.
  void Dispatch(Request req);
  void RecordFailure(const Request& req, Status status);
  void RecordCompletion(const Request& req, const fwcore::InvocationResult& result,
                        int host_index, bool warm_hit);
  fwsim::Co<void> Worker(int host_index);
  fwsim::Co<void> Autoscaler(int host_index);
  // One concurrent clone preparation; discards the clone if the host crashed
  // while it was being prepared (its memory is gone).
  fwsim::Co<void> PrepareOne(int host_index, std::string app, uint64_t epoch);
  fwsim::Co<void> Sampler();

  fwsim::Simulation& sim_;
  Config config_;
  fwobs::Observability obs_;
  std::unique_ptr<Scheduler> scheduler_;
  std::vector<HostState> hosts_;
  std::vector<std::string> installed_;  // Install order (autoscaler iteration).
  bool running_ = true;

  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  uint64_t retries_ = 0;
  uint64_t zombie_discards_ = 0;
  std::vector<Outcome> outcomes_;  // Indexed by request id - 1.
  fwbase::SampleStats latency_ms_;
  fwbase::SampleStats startup_ms_;
  double peak_pss_bytes_ = 0.0;
  uint64_t peak_live_vms_ = 0;
};

}  // namespace fwcluster

#endif  // FIREWORKS_SRC_CLUSTER_CLUSTER_H_
