// Overload control for the cluster front end: bounded dispatch queues with
// deadline-aware load shedding, plus per-app token-bucket retry budgets.
//
// Admission decides at *enqueue* time, CoDel-style: instead of letting a
// request queue to death and time out after burning a worker, it is shed
// immediately with kResourceExhausted when
//   (a) the target host's dispatch queue is at its hard capacity, or
//   (b) the estimated wait — queue depth × EWMA service time / workers —
//       already exceeds the request's remaining deadline budget.
// A fast rejection costs the client one RTT; a slow timeout costs a queue
// slot, a worker, and everyone behind it. Goodput under 2× overload is won
// almost entirely by (a)+(b).
//
// The retry budget keeps crash recovery from amplifying overload into a
// retry storm: every *accepted first attempt* of an app deposits
// `deposit_ratio` tokens (capped at `burst`), every retry spends one. Under
// normal failure rates the bucket never empties; when failures approach the
// deposit ratio the budget clamps the retry rate to a fixed fraction of the
// offered load instead of letting it multiply.
//
// Both pieces are plain deterministic arithmetic — no clock reads, no RNG.
#ifndef FIREWORKS_SRC_CLUSTER_ADMISSION_H_
#define FIREWORKS_SRC_CLUSTER_ADMISSION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/units.h"

namespace fwcluster {

using fwbase::Duration;
using fwbase::SimTime;
using fwbase::Status;

struct AdmissionConfig {
  AdmissionConfig() {}

  bool enabled = true;
  // Hard cap on one host's dispatch queue depth (<= 0 disables the cap).
  int queue_capacity = 256;
  // Deadline stamped on submits that do not carry one. Zero = no deadline:
  // requests then only shed on the hard cap, never on estimated wait.
  Duration default_deadline = Duration::Zero();
  // EWMA weight for observed per-invocation service times.
  double service_ewma_alpha = 0.2;
  // Service-time prior before any completion has been observed.
  Duration initial_service_estimate = Duration::Millis(5);
};

class AdmissionController {
 public:
  AdmissionController(int num_hosts, int workers_per_host, const AdmissionConfig& config);

  // Enqueue-time decision for dispatching to `host` whose queue currently
  // holds `queue_depth` requests. `deadline` is absolute (SimTime::Max() =
  // none). Ok means enqueue; otherwise kResourceExhausted with the reason.
  Status Admit(int host, int64_t queue_depth, SimTime now, SimTime deadline) const;

  // Feeds one observed service time (dequeue → completion) into the host's
  // EWMA used for wait estimation.
  void RecordService(int host, Duration service);

  // Grows the controller by one host (elastic fleet join); the new host's
  // service EWMA starts at the configured prior.
  void AddHost();

  Duration EstimatedWait(int host, int64_t queue_depth) const;

  const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
  int workers_per_host_;
  std::vector<double> service_ewma_seconds_;
};

class RetryBudget {
 public:
  // A disabled budget admits every retry. Buckets start at `burst`.
  RetryBudget(bool enabled, double deposit_ratio, double burst);

  // One accepted first attempt of `app`: deposits deposit_ratio tokens.
  void OnAccepted(const std::string& app);

  // One retry of `app`: spends a token, or returns false when the bucket is
  // empty (the retry must be abandoned).
  bool TrySpend(const std::string& app);

  double tokens(const std::string& app) const;

 private:
  bool enabled_;
  double deposit_ratio_;
  double burst_;
  // Ordered map: iteration order never matters here, but determinism rules
  // in this tree prefer ordered containers throughout.
  std::map<std::string, double> tokens_;
};

}  // namespace fwcluster

#endif  // FIREWORKS_SRC_CLUSTER_ADMISSION_H_
