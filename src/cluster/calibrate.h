// Distils a HostCalibration for ModelHost from full-fidelity probe runs.
//
// Fleet-scale simulations (≥1M invocations) cannot afford the per-page
// fidelity of a FullHost (~tens of thousands of events per invocation), so
// ModelHost replays per-invocation costs measured here: a scratch single-host
// simulation runs a handful of real invocations through the complete stack
// (netns, broker, snapshot restore, page faults, guest execution) and the
// phase means become the model's parameters. Calibration is itself seeded and
// deterministic, so model-cluster runs stay bit-identical end to end.
#ifndef FIREWORKS_SRC_CLUSTER_CALIBRATE_H_
#define FIREWORKS_SRC_CLUSTER_CALIBRATE_H_

#include <functional>
#include <memory>

#include "src/cluster/host.h"
#include "src/core/platform.h"
#include "src/lang/function_ir.h"

namespace fwcluster {

// Builds the platform under calibration on a scratch HostEnv. The bench
// supplies this from its platform registry so the cluster library does not
// depend on the baselines.
using PlatformFactory =
    std::function<std::unique_ptr<fwcore::ServerlessPlatform>(fwcore::HostEnv&)>;

struct CalibrationOptions {
  CalibrationOptions() {}

  int probes = 5;      // Invocations per path (means are taken over these).
  uint64_t seed = 42;  // Seed of the scratch probe simulation.
};

// Measures `fn` on the platform built by `factory`:
//   * regular-path probes fill cold_{startup,exec,others} (for Fireworks the
//     regular path is the snapshot-restore path; baselines run force_cold);
//   * warm-path probes fill warm_* (parked clones for Fireworks, Prewarm for
//     the baselines) and prepare_cost;
//   * one kept instance / one parked clone fills the marginal PSS numbers.
HostCalibration CalibratePlatform(const PlatformFactory& factory,
                                  const fwlang::FunctionSource& fn,
                                  const CalibrationOptions& options);

}  // namespace fwcluster

#endif  // FIREWORKS_SRC_CLUSTER_CALIBRATE_H_
