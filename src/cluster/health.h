// Heartbeat-driven failure detection for the cluster front end.
//
// The front end used to consult an omniscient liveness oracle (the cluster's
// own `alive` bit). Real control planes only see evidence: periodic
// heartbeats and data-path errors. This module turns that evidence into a
// per-host health state machine:
//
//        heartbeat                 phi >= phi_suspect        phi >= phi_dead
//   ┌───────────────┐            ┌──────────────────┐      ┌───────────────┐
//   │               ▼            │                  ▼      │               ▼
//   │            ALIVE ──────────┘               SUSPECT ──┘             DEAD
//   │               ▲                              │ │                     │
//   │               └──────────────────────────────┘ │                     │
//   │                      heartbeat (reinstated)    │                     │
//   └────────────────────────────────────────────────┴─────────────────────┘
//                heartbeat (reinstated — false positive healed)
//
// Suspicion uses a phi-accrual detector (Hayashibara et al.) in its
// exponential form: with an EWMA `mean` of observed heartbeat intervals,
//   phi(Δt) = log10(e) · Δt / mean
// grows linearly in the time since the last heartbeat, so thresholds express
// "the chance a live host is this late is < 10^-phi". Two thresholds split
// the response: a *suspect* host is deprioritized by the scheduler but keeps
// its in-flight work; only a *dead* host is excluded outright. A heartbeat
// from any non-alive state reinstates the host immediately — false positives
// heal, and exactly-once is preserved by the cluster's epoch guards, not by
// the detector.
//
// ReportFailure() is the data-path shortcut: a worker that observes a
// connection-refused analog (bounced queue, stale-epoch zombie) does not wait
// out phi; the host is dead now.
//
// Heartbeats also carry a memory-pressure reading (PSS fraction of host
// memory); `pressured()` feeds the brownout path (autoscaler sheds warm
// pools, scheduler deprioritizes) before the host OOMs.
//
// Everything here is a pure function of the call sequence — no clock reads,
// no RNG — so detection is as deterministic as the simulation driving it.
#ifndef FIREWORKS_SRC_CLUSTER_HEALTH_H_
#define FIREWORKS_SRC_CLUSTER_HEALTH_H_

#include <cstdint>
#include <vector>

#include "src/base/units.h"

namespace fwcluster {

using fwbase::Duration;
using fwbase::SimTime;

enum class HealthState { kAlive, kSuspect, kDead };

const char* HealthStateName(HealthState state);

// State-machine edge taken by one detector call, surfaced so the cluster can
// mirror transitions into metrics (cluster.suspects / detector_dead /
// reinstated) without the detector depending on observability.
enum class HealthTransition { kNone, kSuspected, kDied, kReinstated };

struct HealthConfig {
  HealthConfig() {}

  // Cadence at which hosts report liveness + memory pressure.
  Duration heartbeat_interval = Duration::Millis(100);
  // phi thresholds (exponential model: phi = log10(e) · Δt / mean_interval).
  // With a steady mean m, suspicion starts at ≈ 4.6·m and death at ≈ 18.4·m.
  double phi_suspect = 2.0;
  double phi_dead = 8.0;
  // EWMA weight for observed heartbeat intervals.
  double interval_ewma_alpha = 0.2;
  // PSS fraction of host memory at which the host counts as pressured
  // (brownout threshold).
  double pressure_fraction = 0.9;
};

class FailureDetector {
 public:
  // All hosts start kAlive with last-heartbeat = `now` and mean interval =
  // heartbeat_interval (startup grace: nobody is suspect before real
  // evidence accrues).
  FailureDetector(int num_hosts, const HealthConfig& config, SimTime now);

  // One received heartbeat. Updates the interval EWMA (only across
  // alive→alive gaps: a reinstatement gap is downtime, not a sample) and
  // reinstates suspect/dead hosts.
  HealthTransition Heartbeat(int host, SimTime now, double pss_fraction);

  // Re-evaluates phi at `now` and applies any suspect/dead transition.
  // Idempotent between heartbeats; never reinstates (only evidence does).
  HealthTransition Evaluate(int host, SimTime now);

  // Data-path evidence of death (bounced dispatch, stale-epoch zombie):
  // transition straight to kDead without waiting for phi.
  HealthTransition ReportFailure(int host);

  // Grows the detector by one host (elastic fleet join). The new host starts
  // kAlive with last-heartbeat = `now` — the same startup grace the initial
  // fleet gets.
  void AddHost(SimTime now);

  HealthState state(int host) const;
  double Phi(int host, SimTime now) const;
  bool pressured(int host) const;
  double pss_fraction(int host) const;

  // Time after the last heartbeat at which phi crosses `phi` given no further
  // heartbeats (so tests can land a recovery exactly at a threshold).
  Duration TimeToPhi(int host, double phi) const;

  const HealthConfig& config() const { return config_; }

 private:
  struct HostRecord {
    SimTime last_heartbeat;
    double mean_interval_seconds = 0.0;
    HealthState state = HealthState::kAlive;
    double pss_fraction = 0.0;
  };

  HealthConfig config_;
  std::vector<HostRecord> records_;
};

}  // namespace fwcluster

#endif  // FIREWORKS_SRC_CLUSTER_HEALTH_H_
