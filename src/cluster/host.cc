#include "src/cluster/host.h"

#include <utility>

#include "src/base/check.h"

namespace fwcluster {

// ---------------------------------------------------------------------------
// FullHost
// ---------------------------------------------------------------------------

FullHost::FullHost(fwsim::Simulation& sim, int id, const Config& config)
    : id_(id),
      memory_bytes_(static_cast<double>(config.env.memory_bytes)),
      env_(sim, config.env),
      platform_(env_, config.fw) {}

fwsim::Co<Status> FullHost::Install(const fwlang::FunctionSource& fn) {
  auto r = co_await platform_.Install(fn);
  co_return r.status();
}

fwsim::Co<Result<fwcore::InvocationResult>> FullHost::Invoke(const std::string& fn_name,
                                                             const std::string& args,
                                                             Duration deadline) {
  fwcore::InvokeOptions options;
  options.deadline = deadline;
  if (platform_.PooledCloneCount(fn_name) > 0) {
    auto r = co_await platform_.InvokeOnClone(fn_name, args, options);
    // kFailedPrecondition means the pool drained between the check and the
    // pop (another dispatch worker took the clone); fall through to the
    // regular snapshot path. Other errors are real invocation failures.
    if (r.ok()) {
      ++warm_hits_;
      co_return r;
    }
    if (r.status().code() != fwbase::StatusCode::kFailedPrecondition) {
      co_return r;
    }
  }
  co_return co_await platform_.Invoke(fn_name, args, options);
}

fwsim::Co<Status> FullHost::PrepareClone(const std::string& fn_name) {
  auto r = co_await platform_.PrepareClone(fn_name);
  co_return r.status();
}

Status FullHost::DiscardClone(const std::string& fn_name) {
  return platform_.DiscardClone(fn_name);
}

size_t FullHost::PooledClones(const std::string& fn_name) const {
  return platform_.PooledCloneCount(fn_name);
}

size_t FullHost::TotalPooledClones() const { return platform_.TotalPooledClones(); }

double FullHost::MemoryBytes() const { return memory_bytes_; }

double FullHost::PssBytes() const {
  return platform_.MeasurePssBytes() + platform_.PooledPssBytes();
}

size_t FullHost::LiveVmCount() { return platform_.hypervisor().live_vm_count(); }

size_t FullHost::LiveNetnsCount() { return env_.network().namespace_count(); }

void FullHost::DropWarmPool() {
  // ReleaseInstances also clears kept instances; the cluster never keeps any,
  // so this only drains the parked-clone pool.
  platform_.ReleaseInstances();
}

// ---------------------------------------------------------------------------
// ModelHost
// ---------------------------------------------------------------------------

ModelHost::ModelHost(fwsim::Simulation& sim, int id, const Config& config)
    : id_(id), sim_(sim), config_(config), rng_(sim.rng().Fork()), cpu_(sim, config.vcpus) {
  FW_CHECK(config.vcpus > 0);
}

Duration ModelHost::Jitter(Duration d) {
  const double j = config_.calibration.jitter;
  const double scale = rng_.UniformDouble(1.0 - j, 1.0 + j);
  return Duration::Nanos(static_cast<int64_t>(static_cast<double>(d.nanos()) * scale));
}

fwsim::Co<Status> ModelHost::Install(const fwlang::FunctionSource& fn) {
  installed_.insert(fn.name);
  co_return Status::Ok();
}

fwsim::Co<Result<fwcore::InvocationResult>> ModelHost::Invoke(const std::string& fn_name,
                                                              const std::string& args,
                                                              Duration deadline) {
  // The calibrated model has no internal retry loop for a deadline to bound;
  // the cluster already sheds requests whose budget cannot be met.
  (void)deadline;
  if (installed_.count(fn_name) == 0) {
    co_return Status::NotFound("function " + fn_name + " is not installed");
  }
  // Claim a parked clone up front: a burst drains the pool even while its
  // requests are still queueing for vCPUs, as on a real host.
  bool warm = false;
  auto pit = pool_.find(fn_name);
  if (pit != pool_.end() && pit->second > 0) {
    warm = true;
    --pit->second;
    --pooled_total_;
    if (pit->second == 0) {
      pool_.erase(pit);
    }
    ++warm_hits_;
  }
  const fwbase::SimTime t0 = sim_.Now();
  co_await cpu_.Acquire();
  ++inflight_vms_;
  const HostCalibration& cal = config_.calibration;
  const Duration startup = Jitter(warm ? cal.warm_startup : cal.cold_startup);
  const Duration exec = Jitter(warm ? cal.warm_exec : cal.cold_exec);
  const Duration others = Jitter(warm ? cal.warm_others : cal.cold_others);
  co_await fwsim::Delay(sim_, startup);
  co_await fwsim::Delay(sim_, exec);
  co_await fwsim::Delay(sim_, others);
  --inflight_vms_;
  cpu_.Release();

  fwcore::InvocationResult result;
  result.startup = startup;
  result.exec = exec;
  // Queueing delay (vCPU wait) lands in `others`, as response-path time.
  result.total = sim_.Now() - t0;
  result.others = result.total - startup - exec;
  result.cold = !warm;
  co_return result;
}

fwsim::Co<Status> ModelHost::PrepareClone(const std::string& fn_name) {
  if (installed_.count(fn_name) == 0) {
    co_return Status::NotFound("function " + fn_name + " is not installed");
  }
  co_await fwsim::Delay(sim_, Jitter(config_.calibration.prepare_cost));
  ++pool_[fn_name];
  ++pooled_total_;
  co_return Status::Ok();
}

Status ModelHost::DiscardClone(const std::string& fn_name) {
  auto pit = pool_.find(fn_name);
  if (pit == pool_.end() || pit->second == 0) {
    return Status::NotFound("no parked clone for " + fn_name);
  }
  --pit->second;
  --pooled_total_;
  if (pit->second == 0) {
    pool_.erase(pit);
  }
  return Status::Ok();
}

size_t ModelHost::PooledClones(const std::string& fn_name) const {
  auto pit = pool_.find(fn_name);
  return pit == pool_.end() ? 0 : pit->second;
}

size_t ModelHost::TotalPooledClones() const { return pooled_total_; }

double ModelHost::PssBytes() const {
  return static_cast<double>(inflight_vms_) * config_.calibration.instance_pss_bytes +
         static_cast<double>(pooled_total_) * config_.calibration.pooled_clone_pss_bytes;
}

size_t ModelHost::LiveVmCount() { return inflight_vms_ + pooled_total_; }

size_t ModelHost::LiveNetnsCount() { return inflight_vms_ + pooled_total_; }

void ModelHost::DropWarmPool() {
  pool_.clear();
  pooled_total_ = 0;
}

}  // namespace fwcluster
