// Front-end scheduling policies for the multi-host cluster (src/cluster).
//
// The front end picks a host for every invocation from a snapshot of per-host
// state (alive? how many in flight?). Three policies:
//
//   * kRoundRobin       — rotate over alive hosts; ignores the app entirely.
//   * kLeastLoaded      — pick the alive host with the fewest in-flight
//                         invocations (ties break to the lowest host index so
//                         decisions are deterministic).
//   * kSnapshotLocality — consistent hashing with virtual nodes and bounded
//                         loads: each app maps to a stable ring owner, so its
//                         post-JIT snapshot pages (and parked warm clones)
//                         stay hot on one host. When the owner is saturated
//                         (inflight above c× the alive-host mean) the request
//                         spills to the next alive host clockwise — a Zipf
//                         head app cannot melt its owner. Crashed owners'
//                         apps spill the same way and return home on restart.
//
// All policies are pure functions of (app, host views, internal counters) —
// no RNG — so a replayed request stream schedules identically.
#ifndef FIREWORKS_SRC_CLUSTER_SCHEDULER_H_
#define FIREWORKS_SRC_CLUSTER_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace fwcluster {

enum class SchedulerPolicy { kRoundRobin, kLeastLoaded, kSnapshotLocality };

const char* SchedulerPolicyName(SchedulerPolicy policy);
std::optional<SchedulerPolicy> ParseSchedulerPolicy(const std::string& name);
std::vector<SchedulerPolicy> AllSchedulerPolicies();

// What the scheduler may consult about one host when picking. With health
// checks enabled this is *detected* state (heartbeats + data-path evidence,
// see health.h), not the cluster's own fault bookkeeping: the front end only
// knows what a real control plane could know.
struct HostView {
  HostView() {}

  // False once the failure detector declares the host dead.
  bool alive = true;
  // Late on heartbeats (phi above the suspect threshold) but not yet dead:
  // schedulable, deprioritized.
  bool suspect = false;
  // Reporting memory pressure (brownout): schedulable, deprioritized.
  bool pressured = false;
  // Invocations dispatched to the host and not yet completed.
  int64_t inflight = 0;
  // Requests sitting in the host's dispatch queue (subset of inflight).
  int64_t queue_depth = 0;
  // Whether the host already holds the app's snapshot locally (chunk cache /
  // installed image). Defaults true so deployments without a distribution
  // tier schedule exactly as before; with one, the locality policy prefers
  // holders before forcing a cold registry pull.
  bool holds_snapshot = true;
  // Failure-domain the host lives in (DESIGN.md §16). Zone-aware placement
  // (WarmTargets) spreads an app's warm capacity across distinct zones; a
  // single-zone fleet leaves every host at zone 0 and nothing changes.
  int zone = 0;

  // Every policy prefers healthy hosts and falls back to merely-alive ones,
  // so a suspect/pressured host sheds new load without being fenced off.
  bool preferred() const { return alive && !suspect && !pressured; }
};

// Deterministic 64-bit string hash (FNV-1a); exposed for tests.
uint64_t HashKey(const std::string& key);

// A consistent-hash ring with virtual nodes. Structural guarantees (the
// scheduler property tests assert these exactly):
//   * adding a host moves keys only onto the new host;
//   * removing a host moves only the keys it owned.
class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(int vnodes_per_host);

  void AddHost(int host);
  void RemoveHost(int host);
  bool Contains(int host) const;

  // Ring owner of `key`; -1 when the ring is empty.
  int Owner(const std::string& key) const;
  // First owner clockwise from `key` for which alive(host) is true; -1 when
  // no member host is alive.
  int OwnerIf(const std::string& key, const std::function<bool(int)>& alive) const;
  // Visits distinct member hosts clockwise from `key`'s ring point (each at
  // most once); stops early when `visit` returns false.
  void Walk(const std::string& key, const std::function<bool(int)>& visit) const;

  size_t host_count() const { return members_.size(); }

 private:
  int vnodes_per_host_;
  // hash point -> host. Ordered: ring walks must not depend on hash-map order.
  std::map<uint64_t, int> ring_;
  std::map<int, bool> members_;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual SchedulerPolicy policy() const = 0;

  // Picks a host index for one invocation of `app`; hosts[i] describes host i.
  // Returns -1 when no host is schedulable.
  virtual int Pick(const std::string& app, const std::vector<HostView>& hosts) = 0;

  // Permanent membership changes (decommission / recommission). A crash is
  // NOT a leave: the host keeps its ring assignment so its apps come home on
  // restart; Pick simply skips non-alive hosts meanwhile.
  virtual void OnHostJoin(int host) {}
  virtual void OnHostLeave(int host) {}

  // Up to `want` distinct alive hosts where `app`'s warm capacity should
  // live, spread across distinct zones: the ring owner first, then the next
  // hosts clockwise in zones not yet covered. Fewer alive zones than `want`
  // simply yields fewer targets — replicas never stack up inside one failure
  // domain. Policies without a placement notion return empty (the cluster
  // then skips zone spreading).
  virtual std::vector<int> WarmTargets(const std::string& app,
                                       const std::vector<HostView>& hosts,
                                       int want) const {
    return {};
  }
};

// Builds a scheduler over hosts [0, num_hosts). `vnodes_per_host` only
// affects kSnapshotLocality.
std::unique_ptr<Scheduler> MakeScheduler(SchedulerPolicy policy, int num_hosts,
                                         int vnodes_per_host = 64);

}  // namespace fwcluster

#endif  // FIREWORKS_SRC_CLUSTER_SCHEDULER_H_
