#include "src/cluster/admission.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/base/strings.h"

namespace fwcluster {

AdmissionController::AdmissionController(int num_hosts, int workers_per_host,
                                         const AdmissionConfig& config)
    : config_(config), workers_per_host_(workers_per_host) {
  FW_CHECK(num_hosts > 0);
  FW_CHECK(workers_per_host > 0);
  service_ewma_seconds_.assign(static_cast<size_t>(num_hosts),
                               config.initial_service_estimate.seconds());
}

Status AdmissionController::Admit(int host, int64_t queue_depth, SimTime now,
                                  SimTime deadline) const {
  if (!config_.enabled) {
    return Status::Ok();
  }
  if (config_.queue_capacity > 0 && queue_depth >= config_.queue_capacity) {
    return Status::ResourceExhausted(
        fwbase::StrFormat("host %d dispatch queue at capacity (%lld)", host,
                          static_cast<long long>(queue_depth)));
  }
  if (deadline < SimTime::Max()) {
    const Duration wait = EstimatedWait(host, queue_depth);
    if (now + wait >= deadline) {
      return Status::ResourceExhausted(fwbase::StrFormat(
          "estimated queue wait %lldus on host %d exceeds request deadline",
          static_cast<long long>(wait.micros()), host));
    }
  }
  return Status::Ok();
}

void AdmissionController::AddHost() {
  service_ewma_seconds_.push_back(config_.initial_service_estimate.seconds());
}

void AdmissionController::RecordService(int host, Duration service) {
  double& ewma = service_ewma_seconds_[static_cast<size_t>(host)];
  ewma = config_.service_ewma_alpha * service.seconds() +
         (1.0 - config_.service_ewma_alpha) * ewma;
}

Duration AdmissionController::EstimatedWait(int host, int64_t queue_depth) const {
  // With W workers draining the queue in parallel, a request behind `depth`
  // others waits roughly depth/W service times before starting.
  const double service = service_ewma_seconds_[static_cast<size_t>(host)];
  const double wait =
      static_cast<double>(queue_depth) * service / static_cast<double>(workers_per_host_);
  return Duration::SecondsF(wait);
}

RetryBudget::RetryBudget(bool enabled, double deposit_ratio, double burst)
    : enabled_(enabled), deposit_ratio_(deposit_ratio), burst_(burst) {
  FW_CHECK(deposit_ratio >= 0.0);
  FW_CHECK(burst >= 1.0);
}

void RetryBudget::OnAccepted(const std::string& app) {
  if (!enabled_) {
    return;
  }
  auto [it, inserted] = tokens_.emplace(app, burst_);
  if (!inserted) {
    it->second = std::min(burst_, it->second + deposit_ratio_);
  }
}

bool RetryBudget::TrySpend(const std::string& app) {
  if (!enabled_) {
    return true;
  }
  auto [it, inserted] = tokens_.emplace(app, burst_);
  if (it->second < 1.0) {
    return false;
  }
  it->second -= 1.0;
  return true;
}

double RetryBudget::tokens(const std::string& app) const {
  auto it = tokens_.find(app);
  return it == tokens_.end() ? burst_ : it->second;
}

}  // namespace fwcluster
