// Snapshot distribution tier: how a cold host obtains an app's post-JIT
// snapshot (DESIGN.md §13).
//
// The registry (fwstore::SnapshotRegistry) is the source of truth for
// published manifests; every host runs a byte-budgeted LRU chunk cache
// (fwstore::ChunkCache) and can serve chunks it holds to peers. The fetch
// protocol, per chunk and in this order:
//
//   1. local chunk cache (free — the base runtime layer is shared by every
//      app on the same runtime, so one app's pull warms the next app's);
//   2. a peer that holds the chunk (rack-local latency/bandwidth);
//   3. the registry (bounded transfer streams, shared bandwidth).
//
// Fetches retry with deterministic exponential backoff on injected faults
// (chunk_corruption fails the digest check after the transfer; a corrupt peer
// chunk falls back to the registry). A host that exhausts every source
// cold-boots the app from scratch — slower, but the cluster stays available
// with the registry down (the chaos suite asserts exactly this).
//
// After install, the first invocation performs a REAP-style working-set
// restore: the manifest carries the page ranges a recording invocation
// touched, and the host prefetches exactly those bytes sequentially instead
// of demand-faulting them one random read at a time.
//
// Everything here is deterministic: no RNG is drawn unless a fault plan
// enables the registry fault kinds, peer selection is lowest-index-holder,
// and concurrent fetches of the same app on one host coalesce onto one
// in-flight pull. The tier is opt-in (Config::enabled defaults false); a
// cluster without it behaves bit-identically to one built before the tier
// existed.
#ifndef FIREWORKS_SRC_CLUSTER_SNAPSHOT_DISTRIBUTION_H_
#define FIREWORKS_SRC_CLUSTER_SNAPSHOT_DISTRIBUTION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/units.h"
#include "src/fault/fault.h"
#include "src/net/fabric.h"
#include "src/obs/observability.h"
#include "src/simcore/primitives.h"
#include "src/simcore/simulation.h"
#include "src/storage/registry.h"

namespace fwcluster {

struct DistributionConfig {
  DistributionConfig() {}

  // Off by default: the cluster then assumes every host holds every snapshot
  // (the pre-distribution model) and none of this code runs.
  bool enabled = false;

  // Layered images: one base runtime layer shared by every app on the same
  // runtime plus a small per-app post-JIT delta. When false, each app
  // publishes a single monolithic layer of base+delta bytes.
  bool layered = true;
  std::string base_runtime = "nodejs";
  uint64_t base_layer_bytes = 96ull << 20;
  uint64_t delta_layer_bytes = 16ull << 20;
  uint64_t chunk_bytes = 1ull << 20;

  // Per-host chunk cache budget; zero disables caching entirely.
  uint64_t cache_budget_bytes = 512ull << 20;

  // Try peers holding a chunk before falling back to the registry.
  bool peer_fetch = true;

  // REAP working-set restore: prefetch only the manifest's working set
  // before the first invocation instead of demand-faulting every touched
  // page. The working set defaults to working_set_fraction of the image.
  bool working_set_restore = true;
  double working_set_fraction = 0.35;

  // Fetch retry policy. Backoff is deterministic (base << attempt): the
  // simulation RNG must not be drawn on the distribution path.
  int max_fetch_attempts = 3;
  fwbase::Duration retry_backoff = fwbase::Duration::Millis(5);

  // Local install: writing fetched chunks into the host snapshot store.
  double install_bandwidth_bytes_per_sec = 2.0e9;

  // Working-set restore cost model: sequential prefetch bandwidth vs the
  // per-page random read a demand fault pays when the set is not prefetched.
  double prefetch_bandwidth_bytes_per_sec = 2.0e9;
  fwbase::Duration demand_fault_read = fwbase::Duration::Micros(12);

  // Full cold boot (no snapshot at all) when every fetch source is lost.
  fwbase::Duration cold_boot_cost = fwbase::Duration::Millis(1500);

  // vmgenid-style uniqueness restoration on every modeled restore
  // (DESIGN.md §15): each WarmRestore call bumps the host's generation
  // counter and charges the guest-side reseed + clock-rebase latency before
  // the clone serves traffic, surfaced as registry.guest_reseed /
  // registry.clock_rebase spans. The costs mirror the full-fidelity
  // RuntimeCosts vmgenid numbers (Node.js).
  bool restore_uniqueness = true;
  fwbase::Duration guest_reseed_cost = fwbase::Duration::Micros(220);
  fwbase::Duration clock_rebase_cost = fwbase::Duration::Micros(50);

  fwnet::ClusterFabric::Config fabric;
};

// Per-tier transfer/outcome counters, aggregated across hosts.
struct DistributionStats {
  uint64_t manifest_fetches = 0;
  uint64_t cold_fetches = 0;    // EnsureSnapshot calls that had to pull.
  uint64_t coalesced = 0;       // Calls that waited on an in-flight pull.
  uint64_t chunks_from_cache = 0;
  uint64_t chunks_from_peer = 0;
  uint64_t chunks_from_registry = 0;
  uint64_t bytes_from_cache = 0;
  uint64_t bytes_from_peer = 0;
  uint64_t bytes_from_registry = 0;
  uint64_t retries = 0;
  uint64_t corrupt_chunks = 0;
  uint64_t registry_unreachable = 0;
  uint64_t cold_boots = 0;      // Total-loss fallbacks.
  uint64_t cache_evictions = 0;
  uint64_t warm_restores = 0;   // Working-set prefetches performed.
  uint64_t demand_restores = 0; // First invocations that demand-faulted.
  uint64_t guest_reseeds = 0;   // vmgenid reseed protocols completed (§15).
};

class SnapshotDistribution {
 public:
  SnapshotDistribution(fwsim::Simulation& sim, int num_hosts,
                       const DistributionConfig& config, fwobs::Observability& obs,
                       fwfault::FaultInjector* injector);

  // Publishes `app`'s snapshot to the registry as a layered manifest with a
  // synthetic working set, and seeds `seed_host` (the host that produced the
  // snapshot) as holding it. The manifest round-trips through its JSON wire
  // format so the production path exercises the codec.
  void Publish(const std::string& app, int seed_host);

  // Whether `host` holds `app`'s snapshot locally (installed or seeded).
  bool Holds(int host, const std::string& app) const;
  // Whether `host` has already warmed `app` (working set prefetched or
  // demand-faulted by a prior first invocation).
  bool Warm(int host, const std::string& app) const;

  // Marks `host` as holding `app` without any transfer: the publishing host,
  // or a host that just cold-booted the app from source.
  void AdoptLocal(int host, const std::string& app);

  // A restarted host keeps its on-disk state (chunk cache, installed images)
  // but lost its page cache: every app needs a fresh working-set restore.
  void OnHostRestart(int host);

  // Grows the tier by one host (elastic fleet join): empty chunk cache, no
  // holds, generation zero — a genuinely cold machine.
  void AddHost();

  // Ensures `host` holds `app`'s snapshot, pulling manifest + chunks through
  // cache → peer → registry as needed. Ok when the host already holds it.
  // On total loss (registry unreachable through every retry), cold-boots:
  // charges cold_boot_cost, adopts locally, and still returns Ok — the error
  // path is unavailability, not failure. Concurrent calls for the same
  // (host, app) coalesce onto one pull.
  fwsim::Co<fwbase::Status> EnsureSnapshot(int host, const std::string& app);

  // First-invocation warm-up on `host`: REAP working-set prefetch when
  // enabled (sequential read of the manifest's working set), otherwise the
  // equivalent demand-fault cost (one random read per touched page).
  // Subsequent calls for a warm (host, app) are free.
  fwsim::Co<void> WarmRestore(int host, const std::string& app);

  const DistributionStats& stats() const { return stats_; }
  // vmgenid generation high-water mark for `host` (monotonic, never reset —
  // not even across OnHostRestart, mirroring a real vmgenid counter).
  uint64_t Generation(int host) const { return generations_[static_cast<size_t>(host)]; }
  const fwstore::SnapshotRegistry& registry() const { return registry_; }
  const fwnet::ClusterFabric& fabric() const { return fabric_; }
  const fwstore::ChunkCache& cache(int host) const { return *caches_[host]; }
  const DistributionConfig& config() const { return config_; }

 private:
  // Fetches one chunk onto `host` (cache → peer → registry), returning the
  // source that served it. Updates the cache and holder index.
  fwsim::Co<fwbase::Result<std::string>> FetchChunk(int host, const fwstore::ChunkRef& chunk);
  // Deterministic peer choice: the lowest-index host (≠ self) whose cache
  // holds the chunk; -1 when none does.
  int PickPeer(int host, uint64_t digest) const;
  bool TripFault(fwfault::FaultKind kind);
  void InsertChunk(int host, const fwstore::ChunkRef& chunk);

  fwsim::Simulation& sim_;
  DistributionConfig config_;
  fwobs::Observability& obs_;
  fwfault::FaultInjector* injector_;
  fwnet::ClusterFabric fabric_;
  fwstore::SnapshotRegistry registry_;
  std::vector<std::unique_ptr<fwstore::ChunkCache>> caches_;
  // Which hosts hold which app (installed snapshot images).
  std::vector<std::set<std::string>> holds_;
  std::vector<std::set<std::string>> warm_;
  // Per-host vmgenid counter: one bump per modeled restore (§15).
  std::vector<uint64_t> generations_;
  // digest -> hosts whose cache holds the chunk (peer-fetch index; entries
  // leave when the owning cache evicts).
  std::map<uint64_t, std::set<int>> chunk_holders_;
  // (host, app) pulls in flight: latecomers wait instead of double-fetching.
  std::map<std::pair<int, std::string>, std::shared_ptr<fwsim::SimEvent>> inflight_;
  DistributionStats stats_;
};

}  // namespace fwcluster

#endif  // FIREWORKS_SRC_CLUSTER_SNAPSHOT_DISTRIBUTION_H_
