#include "src/cluster/calibrate.h"

#include <utility>

#include "src/base/check.h"
#include "src/core/fireworks.h"
#include "src/simcore/run_sync.h"

namespace fwcluster {

namespace {

struct PhaseSums {
  PhaseSums() {}
  Duration startup;
  Duration exec;
  Duration others;
  int n = 0;

  void Add(const fwcore::InvocationResult& r) {
    startup = startup + r.startup;
    exec = exec + r.exec;
    others = others + r.others;
    ++n;
  }
  Duration MeanStartup() const { return Duration::Nanos(startup.nanos() / n); }
  Duration MeanExec() const { return Duration::Nanos(exec.nanos() / n); }
  Duration MeanOthers() const { return Duration::Nanos(others.nanos() / n); }
};

fwsim::Co<Status> RunProbes(fwsim::Simulation& sim, fwcore::ServerlessPlatform& platform,
                            const fwlang::FunctionSource& fn, int probes,
                            HostCalibration& cal) {
  auto installed = co_await platform.Install(fn);
  if (!installed.ok()) {
    co_return installed.status();
  }
  auto* fireworks = dynamic_cast<fwcore::FireworksPlatform*>(&platform);

  // Regular path (Fireworks: snapshot restore; baselines: explicit cold).
  fwcore::InvokeOptions cold_options;
  cold_options.force_cold = fireworks == nullptr;
  PhaseSums cold;
  for (int i = 0; i < probes; ++i) {
    auto r = co_await platform.Invoke(fn.name, "probe", cold_options);
    if (!r.ok()) {
      co_return r.status();
    }
    cold.Add(*r);
  }
  cal.cold_startup = cold.MeanStartup();
  cal.cold_exec = cold.MeanExec();
  cal.cold_others = cold.MeanOthers();

  // Marginal PSS of one running instance.
  fwcore::InvokeOptions keep_options;
  keep_options.keep_instance = true;
  auto kept = co_await platform.Invoke(fn.name, "probe", keep_options);
  if (!kept.ok()) {
    co_return kept.status();
  }
  cal.instance_pss_bytes = platform.MeasurePssBytes();
  platform.ReleaseInstances();

  // Warm path + prepare cost.
  PhaseSums warm;
  if (fireworks != nullptr) {
    Duration prepare_total;
    for (int i = 0; i < probes; ++i) {
      const fwbase::SimTime t0 = sim.Now();
      auto prepared = co_await fireworks->PrepareClone(fn.name);
      if (!prepared.ok()) {
        co_return prepared.status();
      }
      prepare_total = prepare_total + (sim.Now() - t0);
      auto r = co_await fireworks->InvokeOnClone(fn.name, "probe", fwcore::InvokeOptions());
      if (!r.ok()) {
        co_return r.status();
      }
      warm.Add(*r);
    }
    cal.prepare_cost = Duration::Nanos(prepare_total.nanos() / probes);
    // Marginal PSS of one parked clone.
    auto prepared = co_await fireworks->PrepareClone(fn.name);
    if (!prepared.ok()) {
      co_return prepared.status();
    }
    cal.pooled_clone_pss_bytes = fireworks->PooledPssBytes();
    Status discarded = fireworks->DiscardClone(fn.name);
    if (!discarded.ok()) {
      co_return discarded;
    }
  } else {
    // Baselines: a prewarmed sandbox plays the parked clone's role.
    const fwbase::SimTime t0 = sim.Now();
    Status prewarmed = co_await platform.Prewarm(fn.name);
    if (!prewarmed.ok()) {
      co_return prewarmed;
    }
    cal.prepare_cost = sim.Now() - t0;
    for (int i = 0; i < probes; ++i) {
      auto r = co_await platform.Invoke(fn.name, "probe", fwcore::InvokeOptions());
      if (!r.ok()) {
        co_return r.status();
      }
      warm.Add(*r);
    }
    cal.pooled_clone_pss_bytes = cal.instance_pss_bytes;
    platform.ReleaseInstances();
  }
  cal.warm_startup = warm.MeanStartup();
  cal.warm_exec = warm.MeanExec();
  cal.warm_others = warm.MeanOthers();
  co_return Status::Ok();
}

}  // namespace

HostCalibration CalibratePlatform(const PlatformFactory& factory,
                                  const fwlang::FunctionSource& fn,
                                  const CalibrationOptions& options) {
  FW_CHECK(options.probes > 0);
  fwsim::Simulation sim(options.seed);
  fwcore::HostEnv::Config env_config;
  fwcore::HostEnv env(sim, env_config);
  std::unique_ptr<fwcore::ServerlessPlatform> platform = factory(env);
  HostCalibration cal;
  Status s = fwsim::RunSync(sim, RunProbes(sim, *platform, fn, options.probes, cal));
  FW_CHECK_MSG(s.ok(), ("calibration probe failed: " + s.ToString()).c_str());
  return cal;
}

}  // namespace fwcluster
