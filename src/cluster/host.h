// Cluster host abstraction: the unit the front-end scheduler dispatches to.
//
// Two implementations share the interface:
//
//   * FullHost — a complete simulated Fireworks machine: its own HostEnv
//     (borrowing the cluster's shared Simulation so all hosts advance on one
//     clock), hypervisor, snapshot store, NAT network, broker, and a
//     FireworksPlatform with its parked-clone warm pool. Full per-page and
//     per-subsystem fidelity; ~tens of thousands of simulation events per
//     invocation. Used by tests, chaos runs, and small benches.
//
//   * ModelHost — a calibrated host model for fleet-scale runs (≥1M
//     invocations across ≥32 hosts): per-invocation latency and memory are
//     drawn from a HostCalibration measured on full-fidelity probe runs
//     (see calibrate.h), with vCPU contention modelled by a FIFO semaphore so
//     queueing delays emerge under burst. A handful of events per invocation.
//
// Both are deterministic: ModelHost's jitter comes from an RNG stream forked
// from the shared simulation at construction time.
#ifndef FIREWORKS_SRC_CLUSTER_HOST_H_
#define FIREWORKS_SRC_CLUSTER_HOST_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/base/units.h"
#include "src/core/fireworks.h"
#include "src/core/platform.h"
#include "src/simcore/primitives.h"
#include "src/simcore/simulation.h"

namespace fwcluster {

using fwbase::Duration;
using fwbase::Result;
using fwbase::Status;

class ClusterHost {
 public:
  virtual ~ClusterHost() = default;

  virtual int id() const = 0;
  virtual const char* kind() const = 0;  // "full" | "model"

  virtual fwsim::Co<Status> Install(const fwlang::FunctionSource& fn) = 0;

  // One end-to-end invocation on this host: a warm-pool hit when a parked
  // clone of `fn_name` exists, the snapshot-restore path otherwise.
  // `deadline` is the request's remaining latency budget (zero = the
  // platform's own default timeout applies).
  virtual fwsim::Co<Result<fwcore::InvocationResult>> Invoke(const std::string& fn_name,
                                                             const std::string& args,
                                                             Duration deadline) = 0;

  // Warm-pool control (driven by the cluster's autoscaler).
  virtual fwsim::Co<Status> PrepareClone(const std::string& fn_name) = 0;
  virtual Status DiscardClone(const std::string& fn_name) = 0;
  virtual size_t PooledClones(const std::string& fn_name) const = 0;
  virtual size_t TotalPooledClones() const = 0;

  // Memory + liveness accounting for the density report and leak checks.
  // MemoryBytes is the host's physical capacity; PssBytes/MemoryBytes is the
  // pressure fraction hosts report in their heartbeats (brownout signal).
  virtual double MemoryBytes() const = 0;
  virtual double PssBytes() const = 0;
  virtual size_t LiveVmCount() = 0;
  virtual size_t LiveNetnsCount() = 0;

  // Warm-pool hits served so far (for the rollup).
  virtual uint64_t warm_hits() const = 0;

  // Crash cleanup: parked clones vanish with the host's memory. In-flight
  // invocations are not cancelled — they drain as zombies whose results the
  // cluster discards (see Cluster::CrashHost).
  virtual void DropWarmPool() = 0;
};

// ---------------------------------------------------------------------------
// FullHost
// ---------------------------------------------------------------------------

class FullHost : public ClusterHost {
 public:
  struct Config {
    Config() {}
    fwcore::HostEnv::Config env;
    fwcore::FireworksPlatform::Config fw;
  };

  FullHost(fwsim::Simulation& sim, int id, const Config& config);

  int id() const override { return id_; }
  const char* kind() const override { return "full"; }

  fwsim::Co<Status> Install(const fwlang::FunctionSource& fn) override;
  fwsim::Co<Result<fwcore::InvocationResult>> Invoke(const std::string& fn_name,
                                                     const std::string& args,
                                                     Duration deadline) override;
  fwsim::Co<Status> PrepareClone(const std::string& fn_name) override;
  Status DiscardClone(const std::string& fn_name) override;
  double MemoryBytes() const override;
  double PssBytes() const override;
  size_t PooledClones(const std::string& fn_name) const override;
  size_t TotalPooledClones() const override;
  size_t LiveVmCount() override;
  size_t LiveNetnsCount() override;
  uint64_t warm_hits() const override { return warm_hits_; }
  void DropWarmPool() override;

  fwcore::HostEnv& env() { return env_; }
  fwcore::FireworksPlatform& platform() { return platform_; }

 private:
  int id_;
  double memory_bytes_;  // Physical capacity (from the HostEnv config).
  fwcore::HostEnv env_;  // Borrows the cluster's shared Simulation.
  fwcore::FireworksPlatform platform_;
  uint64_t warm_hits_ = 0;
};

// ---------------------------------------------------------------------------
// ModelHost
// ---------------------------------------------------------------------------

// Per-invocation costs distilled from full-fidelity probe runs (calibrate.h).
// cold_* describe the platform's regular path (for Fireworks: the snapshot
// restore path — there is no semantic cold/warm distinction), warm_* the
// parked-clone / prewarmed path.
struct HostCalibration {
  HostCalibration() {}

  Duration cold_startup;
  Duration cold_exec;
  Duration cold_others;
  Duration warm_startup;
  Duration warm_exec;
  Duration warm_others;
  // Wall time of preparing one parked clone (off the latency path).
  Duration prepare_cost;
  // Marginal PSS of one running instance / one parked clone (CoW sharing
  // against the snapshot image makes these far smaller than RSS).
  double instance_pss_bytes = 0.0;
  double pooled_clone_pss_bytes = 0.0;
  // Multiplicative latency jitter: each phase is scaled by a uniform draw
  // from [1 - jitter, 1 + jitter].
  double jitter = 0.04;
};

class ModelHost : public ClusterHost {
 public:
  struct Config {
    Config() {}
    int vcpus = 16;
    // Modelled physical memory (denominator of the pressure fraction).
    double memory_bytes = 8.0 * (1ull << 30);
    HostCalibration calibration;
  };

  // Forks a jitter RNG stream from `sim`'s generator (deterministic given
  // construction order).
  ModelHost(fwsim::Simulation& sim, int id, const Config& config);

  int id() const override { return id_; }
  const char* kind() const override { return "model"; }

  fwsim::Co<Status> Install(const fwlang::FunctionSource& fn) override;
  fwsim::Co<Result<fwcore::InvocationResult>> Invoke(const std::string& fn_name,
                                                     const std::string& args,
                                                     Duration deadline) override;
  fwsim::Co<Status> PrepareClone(const std::string& fn_name) override;
  Status DiscardClone(const std::string& fn_name) override;
  double MemoryBytes() const override { return config_.memory_bytes; }
  double PssBytes() const override;
  size_t PooledClones(const std::string& fn_name) const override;
  size_t TotalPooledClones() const override;
  size_t LiveVmCount() override;
  size_t LiveNetnsCount() override;
  uint64_t warm_hits() const override { return warm_hits_; }
  void DropWarmPool() override;

 private:
  Duration Jitter(Duration d);

  int id_;
  fwsim::Simulation& sim_;
  Config config_;
  fwbase::Rng rng_;
  fwsim::Resource cpu_;
  std::set<std::string> installed_;
  std::map<std::string, size_t> pool_;  // Parked-clone counts per function.
  size_t pooled_total_ = 0;
  size_t inflight_vms_ = 0;
  uint64_t warm_hits_ = 0;
};

}  // namespace fwcluster

#endif  // FIREWORKS_SRC_CLUSTER_HOST_H_
