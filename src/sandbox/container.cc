#include "src/sandbox/container.h"

#include <utility>

#include "src/base/check.h"
#include "src/base/logging.h"
#include "src/fault/fault.h"

namespace fwbox {

const char* ContainerRuntimeName(ContainerRuntime runtime) {
  switch (runtime) {
    case ContainerRuntime::kRunc:
      return "runc";
    case ContainerRuntime::kGvisor:
      return "gvisor";
  }
  return "?";
}

Container::Container(uint64_t id, std::string name, const ContainerConfig& config,
                     std::unique_ptr<fwmem::AddressSpace> space)
    : id_(id), name_(std::move(name)), config_(config), space_(std::move(space)) {}

ContainerEngine::ContainerEngine(fwsim::Simulation& sim, fwmem::HostMemory& host_memory,
                                 fwstore::SnapshotStore& checkpoint_store)
    : ContainerEngine(sim, host_memory, checkpoint_store, Config()) {}

ContainerEngine::ContainerEngine(fwsim::Simulation& sim, fwmem::HostMemory& host_memory,
                                 fwstore::SnapshotStore& checkpoint_store, const Config& config)
    : sim_(sim),
      host_memory_(host_memory),
      checkpoint_store_(checkpoint_store),
      config_(config) {}

fwsim::Co<Container*> ContainerEngine::CreateContainer(
    const std::string& name, const ContainerConfig& config,
    std::shared_ptr<fwmem::SnapshotImage> base_image) {
  Duration setup = config_.image_resolve_cost + config_.namespace_setup_cost +
                   config_.cgroup_setup_cost;
  if (config.runtime == ContainerRuntime::kRunc) {
    setup += config_.runc_spawn_cost;
  } else {
    setup += config_.sentry_spawn_cost + config_.gofer_spawn_cost;
  }
  co_await fwsim::Delay(sim_, setup);
  std::unique_ptr<fwmem::AddressSpace> space;
  if (base_image != nullptr) {
    space = std::make_unique<fwmem::AddressSpace>(host_memory_, std::move(base_image));
  } else {
    space = std::make_unique<fwmem::AddressSpace>(host_memory_);
  }
  const uint64_t id = next_id_++;
  auto container = std::make_unique<Container>(id, name, config, std::move(space));
  container->set_state(ContainerState::kRunning);
  Container* raw = container.get();
  containers_.emplace(id, std::move(container));
  ++containers_created_;
  FW_LOG(kDebug) << "created " << ContainerRuntimeName(config.runtime) << " container " << name;
  co_return raw;
}

fwsim::Co<Status> ContainerEngine::Pause(Container& c) {
  if (c.state() != ContainerState::kRunning) {
    co_return Status::FailedPrecondition("pause requires a running container");
  }
  co_await fwsim::Delay(sim_, config_.pause_cost);
  c.set_state(ContainerState::kPaused);
  co_return Status::Ok();
}

fwsim::Co<Status> ContainerEngine::Unpause(Container& c) {
  if (c.state() != ContainerState::kPaused) {
    co_return Status::FailedPrecondition("unpause requires a paused container");
  }
  co_await fwsim::Delay(sim_, config_.unpause_cost);
  if (injector_ != nullptr && injector_->Trip(fwfault::FaultKind::kSandboxCrash)) {
    c.set_state(ContainerState::kDead);
    co_return Status::Unavailable("sandbox " + c.name() + " crashed on unpause");
  }
  c.set_state(ContainerState::kRunning);
  co_return Status::Ok();
}

fwsim::Co<Result<std::shared_ptr<fwmem::SnapshotImage>>> ContainerEngine::Checkpoint(
    Container& c, const std::string& checkpoint_name) {
  if (c.config().runtime != ContainerRuntime::kGvisor) {
    co_return Status::FailedPrecondition("checkpoint requires the gVisor runtime");
  }
  if (c.state() != ContainerState::kRunning && c.state() != ContainerState::kPaused) {
    co_return Status::FailedPrecondition("checkpoint requires a live container");
  }
  if (c.state() == ContainerState::kRunning) {
    Status paused = co_await Pause(c);
    if (!paused.ok()) {
      co_return paused;
    }
  }
  co_await fwsim::Delay(sim_, config_.checkpoint_state_cost);
  auto image = c.address_space().TakeSnapshot(checkpoint_name);
  Status saved = co_await checkpoint_store_.Save(image);
  if (!saved.ok()) {
    co_return saved;
  }
  ++checkpoints_taken_;
  co_return image;
}

fwsim::Co<Result<Container*>> ContainerEngine::RestoreCheckpoint(
    const std::string& checkpoint_name, const std::string& container_name,
    const ContainerConfig& config) {
  if (config.runtime != ContainerRuntime::kGvisor) {
    co_return Status::FailedPrecondition("restore requires the gVisor runtime");
  }
  auto image = checkpoint_store_.Get(checkpoint_name);
  if (!image.ok()) {
    co_return image.status();
  }
  co_await fwsim::Delay(sim_, config_.namespace_setup_cost + config_.cgroup_setup_cost +
                                  config_.sentry_spawn_cost + config_.gofer_spawn_cost +
                                  config_.restore_state_cost);
  if (injector_ != nullptr && injector_->Trip(fwfault::FaultKind::kSandboxCrash)) {
    // The Sentry died before the container was registered: nothing to clean up.
    co_return Status::Unavailable("sandbox crashed restoring " + checkpoint_name);
  }
  auto space = std::make_unique<fwmem::AddressSpace>(host_memory_, *image);
  const uint64_t id = next_id_++;
  auto container = std::make_unique<Container>(id, container_name, config, std::move(space));
  container->set_state(ContainerState::kRunning);
  Container* raw = container.get();
  containers_.emplace(id, std::move(container));
  co_return raw;
}

Status ContainerEngine::Destroy(Container& c) {
  auto it = containers_.find(c.id());
  if (it == containers_.end()) {
    return Status::NotFound("no such container");
  }
  c.address_space().Unmap();
  c.set_state(ContainerState::kDead);
  containers_.erase(it);
  return Status::Ok();
}

fwstore::FsKind ContainerEngine::FsKindFor(ContainerRuntime runtime) {
  switch (runtime) {
    case ContainerRuntime::kRunc:
      return fwstore::FsKind::kOverlayFs;
    case ContainerRuntime::kGvisor:
      return fwstore::FsKind::kGofer;
  }
  return fwstore::FsKind::kOverlayFs;
}

double ContainerEngine::ComputeScale(ContainerRuntime runtime) const {
  return runtime == ContainerRuntime::kGvisor ? config_.gvisor_compute_scale : 1.0;
}

Duration ContainerEngine::FaultServiceTime(const Container& c,
                                           const fwmem::FaultCounts& faults) const {
  const bool warm =
      c.address_space().image_backed() && c.address_space().image()->cache_warm();
  const Duration major_cost = warm ? config_.minor_fault_cost : config_.major_fault_cost;
  return major_cost * static_cast<int64_t>(faults.major_faults) +
         config_.minor_fault_cost * static_cast<int64_t>(faults.minor_shared) +
         config_.zero_fault_cost * static_cast<int64_t>(faults.zero_fills) +
         config_.cow_fault_cost * static_cast<int64_t>(faults.cow_copies + faults.fresh_writes);
}

fwsim::Co<void> ContainerEngine::ServiceFaults(const Container& c,
                                               const fwmem::FaultCounts& faults) {
  co_await fwsim::Delay(sim_, FaultServiceTime(c, faults));
}

}  // namespace fwbox
