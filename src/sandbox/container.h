// Container sandbox substrate: the execution vehicle of the OpenWhisk and
// gVisor baselines.
//
// Two runtime classes are modelled:
//   * runc-like: namespaces + cgroups + chroot/OverlayFS. Fast I/O (§5.2.1:
//     OpenWhisk's I/O beats microVMs because it hits the host FS directly)
//     but kernel-sharing isolation only.
//   * gVisor: adds the Sentry (user-space kernel intercepting syscalls) and
//     Gofer (file proxy). Slowest I/O path, extra compute overhead, but a
//     stronger (still sub-VM) isolation boundary. Supports checkpoint /
//     restore, which Catalyzer-style warm starts and the gVisor baseline's
//     snapshot mode build on.
//
// Containers may be created from a shared base image (the runtime rootfs):
// read-only pages (runtime binary text) are then shared across containers via
// the host page cache, like real containers sharing image layers.
#ifndef FIREWORKS_SRC_SANDBOX_CONTAINER_H_
#define FIREWORKS_SRC_SANDBOX_CONTAINER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/base/status.h"
#include "src/base/units.h"
#include "src/mem/address_space.h"
#include "src/mem/host_memory.h"
#include "src/simcore/simulation.h"
#include "src/storage/filesystem.h"
#include "src/storage/snapshot_store.h"

namespace fwfault {
class FaultInjector;
}  // namespace fwfault

namespace fwbox {

using fwbase::Duration;
using fwbase::Result;
using fwbase::Status;

enum class ContainerRuntime { kRunc, kGvisor };

const char* ContainerRuntimeName(ContainerRuntime runtime);

enum class ContainerState { kCreated, kRunning, kPaused, kDead };

struct ContainerConfig {
  ContainerConfig() = default;
  explicit ContainerConfig(ContainerRuntime runtime) : runtime(runtime) {}

  ContainerRuntime runtime = ContainerRuntime::kRunc;
  uint64_t mem_limit_bytes = 512 * fwbase::kMiB;
};

class Container {
 public:
  Container(uint64_t id, std::string name, const ContainerConfig& config,
            std::unique_ptr<fwmem::AddressSpace> space);

  Container(const Container&) = delete;
  Container& operator=(const Container&) = delete;

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  const ContainerConfig& config() const { return config_; }
  ContainerState state() const { return state_; }
  fwmem::AddressSpace& address_space() { return *space_; }
  const fwmem::AddressSpace& address_space() const { return *space_; }

 private:
  friend class ContainerEngine;

  void set_state(ContainerState s) { state_ = s; }

  uint64_t id_;
  std::string name_;
  ContainerConfig config_;
  std::unique_ptr<fwmem::AddressSpace> space_;
  ContainerState state_ = ContainerState::kCreated;
};

class ContainerEngine {
 public:
  struct Config {
    Config() {}

    Duration image_resolve_cost = Duration::Millis(22);   // Cached layer lookup.
    Duration namespace_setup_cost = Duration::Millis(24); // netns + mounts.
    Duration cgroup_setup_cost = Duration::Millis(7);
    Duration runc_spawn_cost = Duration::Millis(38);      // runc + container init.
    Duration sentry_spawn_cost = Duration::Millis(70);    // gVisor Sentry boot.
    Duration gofer_spawn_cost = Duration::Millis(25);     // gVisor Gofer proxy.
    Duration pause_cost = Duration::Millis(2);
    Duration unpause_cost = Duration::Millis(3);
    Duration checkpoint_state_cost = Duration::Millis(20);
    Duration restore_state_cost = Duration::Millis(12);
    // Per-page fault service costs (same machinery as the VMM).
    Duration minor_fault_cost = Duration::Nanos(180);
    Duration major_fault_cost = Duration::Micros(24);
    Duration cow_fault_cost = Duration::Nanos(1800);
    Duration zero_fault_cost = Duration::Nanos(500);
    // gVisor compute penalty (Sentry platform overhead on user code).
    double gvisor_compute_scale = 1.18;
  };

  ContainerEngine(fwsim::Simulation& sim, fwmem::HostMemory& host_memory,
                  fwstore::SnapshotStore& checkpoint_store);
  ContainerEngine(fwsim::Simulation& sim, fwmem::HostMemory& host_memory,
                  fwstore::SnapshotStore& checkpoint_store, const Config& config);

  // Optional: sandbox crash faults on unpause and checkpoint restore. A
  // crashed container transitions to kDead and still needs Destroy().
  void set_fault_injector(fwfault::FaultInjector* injector) { injector_ = injector; }

  // Creates and starts a container. `base_image` (may be null) is the runtime
  // rootfs; its read-only pages are shared across containers.
  fwsim::Co<Container*> CreateContainer(const std::string& name, const ContainerConfig& config,
                                        std::shared_ptr<fwmem::SnapshotImage> base_image);

  fwsim::Co<Status> Pause(Container& c);
  fwsim::Co<Status> Unpause(Container& c);

  // gVisor checkpoint/restore (unsupported on runc in this model, as in the
  // paper's baseline set).
  fwsim::Co<Result<std::shared_ptr<fwmem::SnapshotImage>>> Checkpoint(
      Container& c, const std::string& checkpoint_name);
  fwsim::Co<Result<Container*>> RestoreCheckpoint(const std::string& checkpoint_name,
                                                  const std::string& container_name,
                                                  const ContainerConfig& config);

  Status Destroy(Container& c);

  // Which filesystem personality a container's file I/O goes through.
  static fwstore::FsKind FsKindFor(ContainerRuntime runtime);
  // Multiplier on in-container compute time.
  double ComputeScale(ContainerRuntime runtime) const;

  fwbase::Duration FaultServiceTime(const Container& c, const fwmem::FaultCounts& faults) const;
  fwsim::Co<void> ServiceFaults(const Container& c, const fwmem::FaultCounts& faults);

  const Config& config() const { return config_; }
  uint64_t containers_created() const { return containers_created_; }
  uint64_t checkpoints_taken() const { return checkpoints_taken_; }
  size_t live_container_count() const { return containers_.size(); }

 private:
  fwsim::Simulation& sim_;
  fwmem::HostMemory& host_memory_;
  fwstore::SnapshotStore& checkpoint_store_;
  Config config_;
  std::map<uint64_t, std::unique_ptr<Container>> containers_;
  uint64_t next_id_ = 1;
  uint64_t containers_created_ = 0;
  uint64_t checkpoints_taken_ = 0;
  fwfault::FaultInjector* injector_ = nullptr;
};

}  // namespace fwbox

#endif  // FIREWORKS_SRC_SANDBOX_CONTAINER_H_
