#include "src/simcore/simulation.h"

#include <utility>

#include "src/base/check.h"
#include "src/base/logging.h"
#include "src/obs/clock.h"

namespace fwsim {

// Root is an eager-started, self-registering driver coroutine: it awaits the
// user's Co<void> and notifies the Simulation when the whole chain completes
// so the frame can be reclaimed from inside the run loop (never from inside
// the coroutine itself, where destroy() would free a live frame).
struct Simulation::Root {
  struct promise_type {
    Simulation* sim = nullptr;
    uint64_t id = 0;

    Root get_return_object() {
      return Root{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) const noexcept {
        h.promise().sim->OnRootDone(h.promise().id);
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    void unhandled_exception() const noexcept { std::terminate(); }
  };

  std::coroutine_handle<promise_type> handle;

  static Root Drive(Co<void> co) { co_await std::move(co); }
};

Simulation::Simulation(uint64_t seed) : rng_(seed) { InstallLogTimeSource(); }

Simulation::~Simulation() {
  fwbase::SetLogTimeSource(nullptr);
  ReclaimDeadRoots();
  // Destroy still-suspended roots; each recursively destroys awaited children.
  for (auto& [id, h] : roots_) {
    h.destroy();
  }
  roots_.clear();
}

void Simulation::InstallLogTimeSource() {
  // Route through the observability clock helper: FW_LOG prefixes and span
  // timestamps share one formatting path and can never disagree.
  fwbase::SetLogTimeSource([this] { return fwobs::FormatSimTime(now_); });
}

void Simulation::Schedule(Duration delay, std::function<void()> fn) {
  FW_CHECK_MSG(!delay.is_negative(), "cannot schedule in the past");
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
}

void Simulation::ScheduleAt(SimTime when, std::function<void()> fn) {
  FW_CHECK_MSG(when >= now_, "cannot schedule in the past");
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void Simulation::set_profiler(fwobs::Profiler* profiler) {
  profiler_ = profiler;
  if (profiler != nullptr) {
    dispatch_scope_ = profiler->RegisterScope("sim.event.dispatch");
    resume_scope_ = profiler->RegisterScope("sim.coro.resume");
  }
}

void Simulation::ScheduleResume(Duration delay, std::coroutine_handle<> h) {
  Schedule(delay, [this, h] {
    FW_PROFILE_SCOPE_ID(profiler_, resume_scope_);
    h.resume();
  });
}

uint64_t Simulation::Spawn(Co<void> co) {
  Root root = Root::Drive(std::move(co));
  const uint64_t id = next_root_id_++;
  root.handle.promise().sim = this;
  root.handle.promise().id = id;
  roots_.emplace(id, root.handle);
  ScheduleResume(Duration::Zero(), root.handle);
  return id;
}

bool Simulation::IsDone(uint64_t root_id) const { return roots_.count(root_id) == 0; }

void Simulation::OnRootDone(uint64_t id) { dead_roots_.push_back(id); }

void Simulation::ReclaimDeadRoots() {
  for (uint64_t id : dead_roots_) {
    auto it = roots_.find(id);
    FW_CHECK(it != roots_.end());
    it->second.destroy();
    roots_.erase(it);
  }
  dead_roots_.clear();
}

bool Simulation::StepOne() {
  if (queue_.empty()) {
    return false;
  }
  // std::priority_queue::top() is const; the event is copied out. Event
  // functions are cheap to move once, so pull via const_cast-free copy of the
  // handle-holding function.
  Event ev = queue_.top();
  queue_.pop();
  FW_CHECK(ev.when >= now_);
  now_ = ev.when;
  ++events_processed_;
  {
    FW_PROFILE_SCOPE_ID(profiler_, dispatch_scope_);
    ev.fn();
  }
  ReclaimDeadRoots();
  return true;
}

void Simulation::Run() {
  stop_requested_ = false;
  while (!stop_requested_ && StepOne()) {
  }
}

bool Simulation::RunUntil(SimTime t) {
  stop_requested_ = false;
  while (!stop_requested_ && !queue_.empty() && queue_.top().when <= t) {
    StepOne();
  }
  if (now_ < t && !stop_requested_) {
    now_ = t;
  }
  return !queue_.empty();
}

}  // namespace fwsim
