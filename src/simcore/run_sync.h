// Drives a coroutine to completion on a Simulation and returns its result.
// The synchronous entry point used by tests, benches, and examples.
#ifndef FIREWORKS_SRC_SIMCORE_RUN_SYNC_H_
#define FIREWORKS_SRC_SIMCORE_RUN_SYNC_H_

#include <memory>
#include <optional>
#include <utility>

#include "src/base/check.h"
#include "src/simcore/simulation.h"

namespace fwsim {

// Spawns `co` and steps the simulation until it completes, then returns its
// result. Events scheduled beyond the completion point (e.g. keep-alive
// expiry timers) stay queued — they belong to simulated future, not to this
// call. FW_CHECKs that the coroutine actually completed (deadlock otherwise).
template <typename T>
T RunSync(Simulation& sim, Co<T> co) {
  auto result = std::make_shared<std::optional<T>>();
  sim.Spawn([](Co<T> c, std::shared_ptr<std::optional<T>> out) -> Co<void> {
    out->emplace(co_await std::move(c));
  }(std::move(co), result));
  while (!result->has_value() && sim.StepOne()) {
  }
  FW_CHECK_MSG(result->has_value(), "coroutine did not complete (deadlock?)");
  return std::move(**result);
}

inline void RunSyncVoid(Simulation& sim, Co<void> co) {
  const uint64_t root = sim.Spawn(std::move(co));
  while (!sim.IsDone(root) && sim.StepOne()) {
  }
  FW_CHECK_MSG(sim.IsDone(root), "coroutine did not complete (deadlock?)");
}

}  // namespace fwsim

#endif  // FIREWORKS_SRC_SIMCORE_RUN_SYNC_H_
