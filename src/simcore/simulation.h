// Discrete-event simulation kernel.
//
// Simulation owns a virtual clock and a time-ordered event queue. Events at
// equal timestamps execute in schedule (FIFO) order, which makes runs fully
// deterministic. Work is expressed either as plain callbacks (Schedule) or as
// C++20 coroutines (Spawn + co_await Delay/primitives from primitives.h).
//
// Spawned root coroutines are owned by the Simulation: their frames are
// reclaimed as soon as they complete, and any still-suspended roots are
// destroyed (recursively, including children they are awaiting) when the
// Simulation is destroyed.
#ifndef FIREWORKS_SRC_SIMCORE_SIMULATION_H_
#define FIREWORKS_SRC_SIMCORE_SIMULATION_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "src/base/rng.h"
#include "src/base/units.h"
#include "src/obs/profiler.h"
#include "src/simcore/coro.h"

namespace fwsim {

using fwbase::Duration;
using fwbase::SimTime;

class Simulation {
 public:
  explicit Simulation(uint64_t seed = 42);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime Now() const { return now_; }
  fwbase::Rng& rng() { return rng_; }

  // Schedules a plain callback `delay` after the current time (>= 0).
  void Schedule(Duration delay, std::function<void()> fn);
  void ScheduleAt(SimTime when, std::function<void()> fn);

  // Schedules a suspended coroutine to be resumed `delay` after now. Used by
  // the synchronisation primitives; resumption always flows through the event
  // queue so primitives never re-enter each other.
  void ScheduleResume(Duration delay, std::coroutine_handle<> h);

  // Starts a root coroutine. The first step runs at the current time (as a
  // queued event, not synchronously). Returns an id usable with IsDone.
  uint64_t Spawn(Co<void> co);
  bool IsDone(uint64_t root_id) const;

  // Runs until the event queue is empty or Stop() is called.
  void Run();
  // Runs events with timestamp <= `t`; afterwards Now() == t unless the queue
  // drained earlier or Stop() was called. Returns true if events remain.
  bool RunUntil(SimTime t);
  bool RunFor(Duration d) { return RunUntil(Now() + d); }
  // Requests the run loop to return after the current event.
  void Stop() { stop_requested_ = true; }

  // Executes exactly one event (the earliest). Returns false if the queue is
  // empty. Building block for run-until-condition drivers (see run_sync.h).
  bool StepOne();

  uint64_t events_processed() const { return events_processed_; }
  size_t live_roots() const { return roots_.size(); }

  // Attributes event-loop dispatch ("sim.event.dispatch") and coroutine
  // resumption ("sim.coro.resume") cost to `profiler`. Pure observation —
  // the profiler never perturbs event order or the clock — so instrumented
  // and uninstrumented runs are bit-identical (tests/profiler_test.cc).
  // Pass nullptr to detach.
  void set_profiler(fwobs::Profiler* profiler);
  fwobs::Profiler* profiler() const { return profiler_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // A self-reclaiming driver for one root coroutine (defined in .cc).
  struct Root;
  friend struct Root;

  void ReclaimDeadRoots();
  void OnRootDone(uint64_t id);
  void InstallLogTimeSource();

  SimTime now_;
  uint64_t next_seq_ = 0;
  uint64_t next_root_id_ = 1;
  uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  // Ordered by root id so teardown destroys frames in spawn order; with an
  // unordered map the destructor's iteration (and any destructor side
  // effects, e.g. logging) would follow hash order. Flagged by
  // `fwlint --check=unordered-iteration`.
  std::map<uint64_t, std::coroutine_handle<>> roots_;
  std::vector<uint64_t> dead_roots_;
  fwbase::Rng rng_;
  fwobs::Profiler* profiler_ = nullptr;
  fwobs::ProfScopeId dispatch_scope_ = 0;
  fwobs::ProfScopeId resume_scope_ = 0;
};

// Awaitable returned by Delay(): suspends the coroutine and resumes it through
// the event queue after `d` of simulated time.
class [[nodiscard]] DelayAwaiter {
 public:
  DelayAwaiter(Simulation& sim, Duration d) : sim_(sim), d_(d) {}
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const { sim_.ScheduleResume(d_, h); }
  void await_resume() const noexcept {}

 private:
  Simulation& sim_;
  Duration d_;
};

inline DelayAwaiter Delay(Simulation& sim, Duration d) { return DelayAwaiter(sim, d); }

}  // namespace fwsim

#endif  // FIREWORKS_SRC_SIMCORE_SIMULATION_H_
