// Coroutine synchronisation primitives for the simulation kernel.
//
// All wake-ups are routed through the Simulation event queue at the current
// simulated time (delay 0), so primitives never resume coroutines re-entrantly
// and same-time wake-ups preserve FIFO order.
//
// Lifetime rule: a primitive must outlive every coroutine suspended on it, and
// must not be triggered after its Simulation has been destroyed.
#ifndef FIREWORKS_SRC_SIMCORE_PRIMITIVES_H_
#define FIREWORKS_SRC_SIMCORE_PRIMITIVES_H_

#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/simcore/simulation.h"

namespace fwsim {

// ---------------------------------------------------------------------------
// SimEvent: a broadcast condition. Waiters suspend until the next Trigger();
// a Trigger wakes everybody who was waiting at that moment.
// ---------------------------------------------------------------------------

class SimEvent {
 public:
  explicit SimEvent(Simulation& sim) : sim_(sim) {}

  class [[nodiscard]] Waiter {
   public:
    explicit Waiter(SimEvent& e) : e_(e) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { e_.waiters_.push_back(h); }
    void await_resume() const noexcept {}

   private:
    SimEvent& e_;
  };

  Waiter Wait() { return Waiter(*this); }

  void Trigger() {
    std::vector<std::coroutine_handle<>> waiters;
    waiters.swap(waiters_);
    for (auto h : waiters) {
      sim_.ScheduleResume(Duration::Zero(), h);
    }
  }

  size_t waiter_count() const { return waiters_.size(); }

 private:
  Simulation& sim_;
  // Bounded by the coroutine population parked on this event, which the
  // workload fixes up front.
  std::vector<std::coroutine_handle<>> waiters_;  // fwlint:allow(unbounded-queue)
};

// ---------------------------------------------------------------------------
// Channel<T>: an unbounded FIFO queue; Recv() suspends while empty.
// ---------------------------------------------------------------------------

template <typename T>
class Channel {
 public:
  explicit Channel(Simulation& sim) : sim_(sim) {}

  void Send(T value) {
    items_.push_back(std::move(value));
    if (!waiters_.empty()) {
      // Reserve the just-queued item for the woken waiter so that a Recv()
      // arriving before the wake-up runs cannot steal it.
      ++claims_;
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.ScheduleResume(Duration::Zero(), h);
    }
  }

  class [[nodiscard]] RecvAwaiter {
   public:
    explicit RecvAwaiter(Channel& ch) : ch_(ch) {}
    // Ready iff an *unreserved* item exists (items not claimed by waiters that
    // a Send already woke but that have not resumed yet).
    bool await_ready() const noexcept { return ch_.items_.size() > ch_.claims_; }
    void await_suspend(std::coroutine_handle<> h) {
      suspended_ = true;
      ch_.waiters_.push_back(h);
    }
    T await_resume() {
      if (suspended_) {
        // We were woken by a Send that reserved an item for us.
        FW_CHECK(ch_.claims_ > 0);
        --ch_.claims_;
      }
      return ch_.TakeFront();
    }

   private:
    Channel& ch_;
    bool suspended_ = false;
  };

  RecvAwaiter Recv() { return RecvAwaiter(*this); }

  // Non-blocking receive.
  std::optional<T> TryRecv() {
    if (items_.size() > claims_) {
      return TakeFront();
    }
    return std::nullopt;
  }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

 private:
  T TakeFront() {
    FW_CHECK(!items_.empty());
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  Simulation& sim_;
  // Channel is deliberately the unbounded primitive: capping and shedding is
  // the admission layer's job (src/cluster/admission.h), and dispatch queues
  // check size() against their cap before Send().
  std::deque<T> items_;  // fwlint:allow(unbounded-queue)
  // Bounded by the worker-coroutine population blocked on Recv().
  std::deque<std::coroutine_handle<>> waiters_;  // fwlint:allow(unbounded-queue)
  size_t claims_ = 0;
};

// ---------------------------------------------------------------------------
// Resource: a counting semaphore with FIFO granting (vCPUs, host cores, I/O
// queue slots). Tokens are granted at Release time to preserve fairness.
// ---------------------------------------------------------------------------

class Resource {
 public:
  Resource(Simulation& sim, int64_t capacity) : sim_(sim), available_(capacity) {
    FW_CHECK(capacity >= 0);
  }

  class [[nodiscard]] AcquireAwaiter {
   public:
    AcquireAwaiter(Resource& r, int64_t n) : r_(r), n_(n) {}
    bool await_ready() {
      if (r_.waiters_.empty() && r_.available_ >= n_) {
        r_.available_ -= n_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { r_.waiters_.push_back({n_, h}); }
    void await_resume() const noexcept {}

   private:
    Resource& r_;
    int64_t n_;
  };

  AcquireAwaiter Acquire(int64_t n = 1) {
    FW_CHECK(n >= 0);
    return AcquireAwaiter(*this, n);
  }

  void Release(int64_t n = 1) {
    FW_CHECK(n >= 0);
    available_ += n;
    // Grant in FIFO order; stop at the first waiter we cannot satisfy so a
    // large request cannot be starved by smaller ones behind it.
    while (!waiters_.empty() && available_ >= waiters_.front().n) {
      auto w = waiters_.front();
      waiters_.pop_front();
      available_ -= w.n;
      sim_.ScheduleResume(Duration::Zero(), w.h);
    }
  }

  int64_t available() const { return available_; }
  size_t waiter_count() const { return waiters_.size(); }

 private:
  struct Waiting {
    int64_t n;
    std::coroutine_handle<> h;
  };

  Simulation& sim_;
  int64_t available_;
  // Bounded by the coroutine population contending for the resource.
  std::deque<Waiting> waiters_;  // fwlint:allow(unbounded-queue)
};

// ---------------------------------------------------------------------------
// Future<T> / SharedPromise<T>: one-shot value with any number of awaiters.
// ---------------------------------------------------------------------------

template <typename T>
class [[nodiscard]] Future {
 public:
  struct State {
    explicit State(Simulation& sim) : sim(sim) {}
    Simulation& sim;
    std::optional<T> value;
    std::vector<std::coroutine_handle<>> waiters;
  };

  explicit Future(std::shared_ptr<State> state) : state_(std::move(state)) {}

  bool ready() const { return state_->value.has_value(); }
  const T& Get() const {
    FW_CHECK(ready());
    return *state_->value;
  }

  class [[nodiscard]] Awaiter {
   public:
    explicit Awaiter(std::shared_ptr<State> s) : s_(std::move(s)) {}
    bool await_ready() const noexcept { return s_->value.has_value(); }
    void await_suspend(std::coroutine_handle<> h) { s_->waiters.push_back(h); }
    T await_resume() const { return *s_->value; }

   private:
    std::shared_ptr<State> s_;
  };

  Awaiter operator co_await() const { return Awaiter(state_); }

 private:
  std::shared_ptr<State> state_;
};

template <typename T>
class SharedPromise {
 public:
  explicit SharedPromise(Simulation& sim)
      : state_(std::make_shared<typename Future<T>::State>(sim)) {}

  Future<T> GetFuture() const { return Future<T>(state_); }

  void Set(T value) {
    FW_CHECK_MSG(!state_->value.has_value(), "SharedPromise set twice");
    state_->value.emplace(std::move(value));
    for (auto h : state_->waiters) {
      state_->sim.ScheduleResume(Duration::Zero(), h);
    }
    state_->waiters.clear();
  }

  bool set() const { return state_->value.has_value(); }

 private:
  std::shared_ptr<typename Future<T>::State> state_;
};

}  // namespace fwsim

#endif  // FIREWORKS_SRC_SIMCORE_PRIMITIVES_H_
