// Lazy coroutine task type for the discrete-event kernel.
//
// Co<T> is a lazily-started coroutine that is awaited exactly once. Awaiting it
// starts the child via symmetric transfer; when the child reaches its final
// suspend it transfers control back to the awaiting parent. The Co object owns
// the coroutine frame: because the awaiter lives inside the parent's frame for
// the duration of the co_await full-expression, destroying a suspended parent
// frame recursively destroys every child frame it is awaiting. Top-level
// coroutines are driven and reclaimed by Simulation::Spawn (see simulation.h).
//
// TOOLCHAIN CONSTRAINT (GCC 12): class types that cross a coroutine boundary —
// by-value parameters, and temporaries materialized inside a co_await full
// expression — MUST NOT be aggregates. GCC 12 copies aggregate objects into
// the coroutine frame bitwise instead of invoking their copy/move constructor,
// which leaves libstdc++ SSO std::string members pointing into the dead frame
// (verified with a minimal reproducer; fixed in later GCC). Any struct used in
// a coroutine signature therefore declares at least one constructor; this is
// checked with static_asserts (!std::is_aggregate_v<T>) at the use sites.
// A second GCC 12 hazard: the conditional operator with co_await on both arms
// (`c ? co_await a : co_await b`) miscompiles and crashes at runtime — write
// an if/else into a named variable instead.
#ifndef FIREWORKS_SRC_SIMCORE_CORO_H_
#define FIREWORKS_SRC_SIMCORE_CORO_H_

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "src/base/check.h"

namespace fwsim {

namespace coro_internal {

// Final awaiter shared by all Co promises: symmetric-transfer to whoever
// awaited us (std::noop_coroutine if nobody did, which parks the chain).
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) const noexcept {
    return h.promise().continuation;
  }
  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation = std::noop_coroutine();

  std::suspend_always initial_suspend() const noexcept { return {}; }
  FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() const noexcept { std::terminate(); }
};

}  // namespace coro_internal

template <typename T>
class [[nodiscard]] Co {
 public:
  struct promise_type : coro_internal::PromiseBase {
    std::optional<T> value;

    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Co(Co&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      DestroyFrame();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  ~Co() { DestroyFrame(); }

  // Awaiting starts the child coroutine; the child resumes us on completion.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) const noexcept {
        h.promise().continuation = cont;
        return h;
      }
      T await_resume() {
        FW_CHECK_MSG(h.promise().value.has_value(), "Co<T> completed without a value");
        return std::move(*h.promise().value);
      }
    };
    return Awaiter{h_};
  }

 private:
  template <typename>
  friend class Co;
  friend class Simulation;

  explicit Co(std::coroutine_handle<promise_type> h) : h_(h) {}

  void DestroyFrame() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Co<void> {
 public:
  struct promise_type : coro_internal::PromiseBase {
    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() const noexcept {}
  };

  Co(Co&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      DestroyFrame();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  ~Co() { DestroyFrame(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) const noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{h_};
  }

 private:
  friend class Simulation;

  explicit Co(std::coroutine_handle<promise_type> h) : h_(h) {}

  void DestroyFrame() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> h_;
};

}  // namespace fwsim

#endif  // FIREWORKS_SRC_SIMCORE_CORO_H_
