#include "src/baselines/container_platform.h"

#include <utility>

#include "src/base/check.h"
#include "src/base/strings.h"
#include "src/baselines/util.h"

namespace fwbaselines {

using fwbase::SimTime;
using fwbox::Container;
using fwbox::ContainerConfig;
using fwlang::ExecEnv;
using fwlang::GuestProcess;

ContainerPlatform::ContainerPlatform(HostEnv& env, const Params& params)
    : env_(env),
      params_(params),
      engine_(env.sim(), env.memory(), env.snapshot_store(), params.engine_config),
      tracer_(&env.tracer()) {
  engine_.set_fault_injector(&env.fault_injector());
}

ContainerPlatform::~ContainerPlatform() {
  *alive_ = false;  // Disarm in-flight keep-alive expiry events.
  ReleaseInstances();
}

std::shared_ptr<fwmem::SnapshotImage> ContainerPlatform::RootfsFor(fwlang::Language language) {
  auto it = rootfs_images_.find(language);
  if (it != rootfs_images_.end()) {
    return it->second;
  }
  auto image = BuildRuntimeRootfs(env_, language);
  rootfs_images_.emplace(language, image);
  return image;
}

fwlang::GuestProcess::FaultCharger ContainerPlatform::ChargerFor(Container* container) {
  return [this, container](const fwmem::FaultCounts& faults) {
    return engine_.FaultServiceTime(*container, faults);
  };
}

fwsim::Co<Result<InstallResult>> ContainerPlatform::Install(const fwlang::FunctionSource& fn) {
  if (installed_.count(fn.name) != 0) {
    co_return Status::AlreadyExists("function " + fn.name + " already installed");
  }
  const SimTime t0 = env_.sim().Now();
  InstalledFunction record;
  record.source = std::make_unique<fwlang::FunctionSource>(fn);
  // Building the action image resolves the rootfs layers and bakes the
  // dependency payload in, so cold starts only pay boot + load.
  RootfsFor(fn.language);
  co_await fwsim::Delay(env_.sim(), params_.engine_config.image_resolve_cost);
  if (fn.package_bytes > 0) {
    const double mib = static_cast<double>(fn.package_bytes) / static_cast<double>(fwbase::kMiB);
    co_await fwsim::Delay(env_.sim(),
                          fwlang::RuntimeCosts::For(fn.language).package_install_cost_per_mib *
                              mib);
    co_await env_.host_fs().WriteFile(fn.package_bytes);
  }
  if (params_.checkpoint_starts) {
    // Catalyzer-style: prepare a container (runtime + app) once, checkpoint
    // it, and serve every start from the checkpoint.
    auto prepared = co_await LaunchSandbox(record, params_.platform_name + "-ckpt-" + fn.name);
    if (!prepared.ok()) {
      co_return prepared.status();
    }
    const std::string checkpoint_name = params_.platform_name + "-" + fn.name;
    auto image = co_await engine_.Checkpoint(*(*prepared)->container, checkpoint_name);
    if (!image.ok()) {
      // Persisting the checkpoint failed: release the prepared container
      // before surfacing the error.
      DestroySandbox(**prepared);
      co_return image.status();
    }
    (void)env_.snapshot_store().Pin(checkpoint_name);
    record.checkpoint_name = checkpoint_name;
    record.process_state = (*prepared)->process->ExtractState();
    DestroySandbox(**prepared);
  }
  InstallResult result;
  result.total = env_.sim().Now() - t0;
  installed_.emplace(fn.name, std::move(record));
  co_return result;
}

fwsim::Co<Result<std::unique_ptr<ContainerPlatform::Sandbox>>> ContainerPlatform::LaunchSandbox(
    const InstalledFunction& fn, const std::string& sandbox_name) {
  auto sandbox = std::make_unique<Sandbox>();
  Container* container = co_await engine_.CreateContainer(
      sandbox_name, ContainerConfig(params_.runtime), RootfsFor(fn.source->language));
  sandbox->container = container;
  sandbox->fs = std::make_unique<fwstore::Filesystem>(
      env_.sim(), env_.disk(), fwbox::ContainerEngine::FsKindFor(params_.runtime));
  ExecEnv guest_env(sandbox->fs.get(), &env_.db(), DirectNetSend(env_),
                    fwbase::Duration::Micros(350));
  sandbox->process = std::make_unique<GuestProcess>(
      env_.sim(), fn.source->language, container->address_space(), guest_env,
      ChargerFor(container), engine_.ComputeScale(params_.runtime));
  sandbox->process->set_mem_salt(next_instance_);
  co_await sandbox->process->BootRuntime();
  co_await sandbox->process->LoadApplication(*fn.source);
  co_return sandbox;
}

fwsim::Co<Result<std::unique_ptr<ContainerPlatform::Sandbox>>>
ContainerPlatform::RestoreSandbox(const InstalledFunction& fn,
                                  const std::string& sandbox_name) {
  FW_CHECK_MSG(!fn.checkpoint_name.empty(), "no checkpoint for this function");
  auto restored = co_await engine_.RestoreCheckpoint(fn.checkpoint_name, sandbox_name,
                                                     ContainerConfig(params_.runtime));
  if (!restored.ok()) {
    co_return restored.status();
  }
  auto sandbox = std::make_unique<Sandbox>();
  sandbox->container = *restored;
  sandbox->fs = std::make_unique<fwstore::Filesystem>(
      env_.sim(), env_.disk(), fwbox::ContainerEngine::FsKindFor(params_.runtime));
  ExecEnv guest_env(sandbox->fs.get(), &env_.db(), DirectNetSend(env_),
                    fwbase::Duration::Micros(350));
  sandbox->process = GuestProcess::FromState(fn.process_state, env_.sim(),
                                             sandbox->container->address_space(), guest_env,
                                             ChargerFor(sandbox->container),
                                             engine_.ComputeScale(params_.runtime));
  sandbox->process->set_mem_salt(next_instance_);
  co_return sandbox;
}

fwsim::Co<Status> ContainerPlatform::Prewarm(const std::string& fn_name) {
  auto it = installed_.find(fn_name);
  if (it == installed_.end()) {
    co_return Status::NotFound("function " + fn_name + " is not installed");
  }
  if (it->second.warm != nullptr) {
    co_return Status::Ok();
  }
  auto sandbox = co_await LaunchSandbox(
      it->second, fwbase::StrFormat("%s-warm-%s", params_.platform_name.c_str(),
                                    fn_name.c_str()));
  if (!sandbox.ok()) {
    co_return sandbox.status();
  }
  Status paused = co_await engine_.Pause(*(*sandbox)->container);
  if (!paused.ok()) {
    co_return paused;
  }
  // Re-acquire after the suspensions above: holding `it` across a co_await
  // is only safe while no code path erases installed_ entries; re-finding
  // keeps that invariant local. Runtime impact: one extra map lookup per
  // prewarm; behaviour is unchanged while the entry still exists.
  it = installed_.find(fn_name);
  if (it == installed_.end()) {
    co_return Status::NotFound("function " + fn_name + " removed during prewarm");
  }
  StashWarm(it->second, *std::move(sandbox), fn_name);
  co_return Status::Ok();
}

void ContainerPlatform::StashWarm(InstalledFunction& fn, std::unique_ptr<Sandbox> sandbox,
                                  const std::string& fn_name) {
  fn.warm = std::move(sandbox);
  const uint64_t generation = ++fn.warm_generation;
  if (params_.keep_alive == Duration::Max()) {
    return;
  }
  std::shared_ptr<bool> alive = alive_;
  env_.sim().Schedule(params_.keep_alive, [this, alive, fn_name, generation] {
    if (!*alive) {
      return;  // The platform is gone.
    }
    auto it = installed_.find(fn_name);
    if (it == installed_.end() || it->second.warm == nullptr ||
        it->second.warm_generation != generation) {
      return;  // Reused or replaced since: a fresh window is armed.
    }
    DestroySandbox(*it->second.warm);
    it->second.warm.reset();
  });
}

fwsim::Co<Result<InvocationResult>> ContainerPlatform::Invoke(const std::string& fn_name,
                                                              const std::string& args,
                                                              const InvokeOptions& options) {
  auto it = installed_.find(fn_name);
  if (it == installed_.end()) {
    co_return Status::NotFound("function " + fn_name + " is not installed");
  }
  InstalledFunction& fn = it->second;
  InvocationResult result;
  const SimTime t0 = env_.sim().Now();
  fwobs::ScopedSpan root(tracer_, params_.platform_name + ".invoke", "invoke");
  root.SetAttribute("function", fn_name);
  fwobs::ScopedSpan startup_span(tracer_, "invoke.startup", "invoke");

  std::unique_ptr<Sandbox> sandbox;
  if (fn.warm != nullptr && !options.force_cold) {
    result.cold = false;
    // Claim the warm sandbox *before* suspending: a concurrent invocation
    // must not grab the same container.
    sandbox = std::move(fn.warm);
    co_await fwsim::Delay(env_.sim(), params_.warm_controller_cost);
    Status resumed = co_await engine_.Unpause(*sandbox->container);
    if (!resumed.ok()) {
      // The sandbox died on unpause: discard it and degrade to a cold start.
      env_.metrics()
          .GetCounter(params_.platform_name + ".warm_crash.count")
          .Increment();
      DestroySandbox(*sandbox);
      sandbox.reset();
      result.cold = true;
      result.attempts = 2;
      result.cold_boot_fallback = true;
    }
  } else {
    result.cold = true;
  }
  if (sandbox == nullptr) {
    co_await fwsim::Delay(env_.sim(), params_.cold_controller_cost);
    const std::string sandbox_name =
        fwbase::StrFormat("%s-%s-%llu", params_.platform_name.c_str(), fn_name.c_str(),
                          static_cast<unsigned long long>(next_instance_));
    // Note: not a conditional expression — GCC 12 miscompiles `c ? co_await a
    // : co_await b` (sibling of the aggregate-copy bug, see simcore/coro.h).
    Result<std::unique_ptr<Sandbox>> launched = Status::Internal("unreachable");
    if (params_.checkpoint_starts) {
      launched = co_await RestoreSandbox(fn, sandbox_name);
      if (!launched.ok()) {
        // Checkpoint path failed (restore crash, corrupted or evicted
        // checkpoint): degrade to a full container launch.
        env_.metrics()
            .GetCounter(params_.platform_name + ".coldboot_fallback.count")
            .Increment();
        result.cold_boot_fallback = true;
        launched = co_await LaunchSandbox(fn, sandbox_name);
      }
    } else {
      launched = co_await LaunchSandbox(fn, sandbox_name);
    }
    if (!launched.ok()) {
      co_return launched.status();
    }
    sandbox = *std::move(launched);
  }
  ++next_instance_;
  root.SetAttribute("cold", result.cold ? "true" : "false");
  startup_span.End();
  const SimTime t_ready = env_.sim().Now();

  // Arguments delivered to the action (/run POST).
  fwobs::ScopedSpan params_span(tracer_, "invoke.params", "invoke");
  co_await fwsim::Delay(env_.sim(), fwbase::Duration::Micros(60) +
                                        env_.network().TransferTime(args.size()));
  params_span.End();
  const SimTime t_args = env_.sim().Now();

  fwobs::ScopedSpan exec_span(tracer_, "invoke.exec", "invoke");
  result.exec_stats =
      co_await sandbox->process->CallMethod(fn.source->entry_method, options.type_sig);
  exec_span.End();
  const SimTime t_exec_done = env_.sim().Now();

  fwobs::ScopedSpan response_span(tracer_, "invoke.response", "invoke");
  co_await fwsim::Delay(env_.sim(), fwbase::Duration::Micros(60) +
                                        env_.network().TransferTime(579));
  response_span.End();
  const SimTime t_done = env_.sim().Now();

  result.startup = t_ready - t0;
  result.exec = t_exec_done - t_args;
  result.others = (t_args - t_ready) + (t_done - t_exec_done);
  result.total = t_done - t0;
  // Close at t_done, before the keep-alive pause.
  root.End();
  result.root_span = root.get();

  if (options.keep_instance) {
    kept_.push_back(std::move(sandbox));
  } else {
    // Keep-alive: the container stays warm for the next request.
    Status paused = co_await engine_.Pause(*sandbox->container);
    FW_CHECK(paused.ok());
    StashWarm(fn, std::move(sandbox), fn_name);
  }
  co_return result;
}

void ContainerPlatform::DestroySandbox(Sandbox& sandbox) {
  if (sandbox.container != nullptr) {
    FW_CHECK(engine_.Destroy(*sandbox.container).ok());
    sandbox.container = nullptr;
  }
}

void ContainerPlatform::ReleaseInstances() {
  for (auto& sandbox : kept_) {
    DestroySandbox(*sandbox);
  }
  kept_.clear();
  for (auto& [name, fn] : installed_) {
    if (fn.warm != nullptr) {
      DestroySandbox(*fn.warm);
      fn.warm.reset();
    }
  }
}

double ContainerPlatform::MeasurePssBytes() const {
  double total = 0.0;
  for (const auto& sandbox : kept_) {
    if (sandbox->container != nullptr) {
      total += sandbox->container->address_space().pss_bytes();
    }
  }
  for (const auto& [name, fn] : installed_) {
    if (fn.warm != nullptr && fn.warm->container != nullptr) {
      total += fn.warm->container->address_space().pss_bytes();
    }
  }
  return total;
}

bool ContainerPlatform::HasWarmContainer(const std::string& fn_name) const {
  auto it = installed_.find(fn_name);
  return it != installed_.end() && it->second.warm != nullptr;
}

ContainerPlatform::Params OpenWhiskPlatform::MakeParams() {
  Params params;
  params.platform_name = "openwhisk";
  params.runtime = fwbox::ContainerRuntime::kRunc;
  params.cold_controller_cost = Duration::Millis(420);
  params.warm_controller_cost = Duration::Millis(55);
  params.supports_chains = true;
  return params;
}

ContainerPlatform::Params GvisorPlatform::MakeParams() {
  Params params;
  params.platform_name = "gvisor";
  params.runtime = fwbox::ContainerRuntime::kGvisor;
  // A sandbox manager driven directly: negligible controller.
  params.cold_controller_cost = Duration::MillisF(0.3);
  params.warm_controller_cost = Duration::MillisF(0.3);
  params.supports_chains = false;
  // runsc boots a user-space kernel per sandbox; its cold start exceeds
  // OpenWhisk's container creation (§5.2.1).
  params.engine_config.sentry_spawn_cost = Duration::Millis(460);
  params.engine_config.gofer_spawn_cost = Duration::Millis(130);
  // Resuming a checkpointed/paused Sentry is far heavier than docker unpause.
  params.engine_config.unpause_cost = Duration::Millis(52);
  return params;
}

ContainerPlatform::Params GvisorSnapshotPlatform::MakeParams() {
  Params params;
  params.platform_name = "gvisor-snapshot";
  params.runtime = fwbox::ContainerRuntime::kGvisor;
  params.cold_controller_cost = Duration::MillisF(0.3);
  params.warm_controller_cost = Duration::MillisF(0.3);
  params.supports_chains = false;
  params.checkpoint_starts = true;
  params.engine_config.sentry_spawn_cost = Duration::Millis(460);
  params.engine_config.gofer_spawn_cost = Duration::Millis(130);
  params.engine_config.unpause_cost = Duration::Millis(52);
  return params;
}

}  // namespace fwbaselines
