// ContainerPlatform: shared machinery of the container-based baselines
// (OpenWhisk on runc, gVisor as a sandbox manager).
//
// Cold start: controller handling → container create (runc or Sentry+Gofer)
// → runtime boot inside the container (binary text shared via the rootfs
// image) → application load → execution (profile-driven JIT only). Warm
// start: the container is kept alive/paused after use (§2.2) and only pays
// controller + execution.
#ifndef FIREWORKS_SRC_BASELINES_CONTAINER_PLATFORM_H_
#define FIREWORKS_SRC_BASELINES_CONTAINER_PLATFORM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/platform.h"
#include "src/sandbox/container.h"

namespace fwbaselines {

using fwcore::Duration;
using fwcore::HostEnv;
using fwcore::InstallResult;
using fwcore::InvocationResult;
using fwcore::InvokeOptions;
using fwcore::Result;
using fwcore::Status;

class ContainerPlatform : public fwcore::ServerlessPlatform {
 public:
  struct Params {
    Params() {}

    std::string platform_name;
    fwbox::ContainerRuntime runtime = fwbox::ContainerRuntime::kRunc;
    // Controller request handling. OpenWhisk's cold path performs
    // authentication and message-queue initialisation (§5.2.1); a plain
    // sandbox manager has almost none.
    Duration cold_controller_cost = Duration::Millis(420);
    Duration warm_controller_cost = Duration::Millis(14);
    bool supports_chains = false;
    // gVisor checkpoint/restore starts (Table 1's "Medium (snapshot)" grade,
    // the Catalyzer-style path): Install checkpoints a prepared container
    // (runtime booted, app loaded); every start restores the checkpoint
    // instead of cold-booting. Requires the gVisor runtime.
    bool checkpoint_starts = false;
    // Keep-alive window for warm sandboxes (§2.2): a paused container unused
    // for this long is terminated to reclaim its memory. Duration::Max()
    // disables expiry.
    Duration keep_alive = Duration::Max();
    fwbox::ContainerEngine::Config engine_config;
  };

  ContainerPlatform(HostEnv& env, const Params& params);
  ~ContainerPlatform() override;

  std::string name() const override { return params_.platform_name; }

  fwsim::Co<Result<InstallResult>> Install(const fwlang::FunctionSource& fn) override;
  fwsim::Co<Result<InvocationResult>> Invoke(const std::string& fn_name,
                                             const std::string& args,
                                             const InvokeOptions& options) override;
  fwsim::Co<Status> Prewarm(const std::string& fn_name) override;
  bool SupportsChains() const override { return params_.supports_chains; }

  double MeasurePssBytes() const override;
  void ReleaseInstances() override;

  bool HasWarmContainer(const std::string& fn_name) const;
  fwbox::ContainerEngine& engine() { return engine_; }

 private:
  struct Sandbox {
    fwbox::Container* container = nullptr;
    std::unique_ptr<fwstore::Filesystem> fs;
    std::unique_ptr<fwlang::GuestProcess> process;
  };
  struct InstalledFunction {
    std::unique_ptr<fwlang::FunctionSource> source;
    std::unique_ptr<Sandbox> warm;
    // Bumped whenever the warm slot changes; expiry events compare it so a
    // reused-and-re-stashed sandbox gets a fresh window.
    uint64_t warm_generation = 0;
    // checkpoint_starts mode: the checkpoint name and the process state to
    // re-attach on restore.
    std::string checkpoint_name;
    fwlang::GuestProcess::State process_state;
  };

  fwsim::Co<Result<std::unique_ptr<Sandbox>>> LaunchSandbox(const InstalledFunction& fn,
                                                            const std::string& sandbox_name);
  fwsim::Co<Result<std::unique_ptr<Sandbox>>> RestoreSandbox(const InstalledFunction& fn,
                                                             const std::string& sandbox_name);
  fwlang::GuestProcess::FaultCharger ChargerFor(fwbox::Container* container);
  void DestroySandbox(Sandbox& sandbox);
  // Stashes a warm sandbox and (if keep_alive is finite) arms its expiry.
  void StashWarm(InstalledFunction& fn, std::unique_ptr<Sandbox> sandbox,
                 const std::string& fn_name);
  std::shared_ptr<fwmem::SnapshotImage> RootfsFor(fwlang::Language language);

  HostEnv& env_;
  Params params_;
  fwbox::ContainerEngine engine_;
  fwobs::Tracer* tracer_;
  std::map<std::string, InstalledFunction> installed_;
  std::map<fwlang::Language, std::shared_ptr<fwmem::SnapshotImage>> rootfs_images_;
  std::vector<std::unique_ptr<Sandbox>> kept_;
  uint64_t next_instance_ = 1;
  // Guards keep-alive expiry callbacks against outliving the platform.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

// OpenWhisk: container-based platform with full controller machinery and
// chain support (the only baseline able to run ServerlessBench apps, §5.3).
class OpenWhiskPlatform : public ContainerPlatform {
 public:
  explicit OpenWhiskPlatform(HostEnv& env) : ContainerPlatform(env, MakeParams()) {}

  // Exposed so experiments can tweak individual knobs (e.g. keep-alive).
  static Params MakeParams();
};

// gVisor: sandbox manager on the gVisor runtime (Sentry/Gofer I/O path,
// compute penalty, no chain support).
class GvisorPlatform : public ContainerPlatform {
 public:
  explicit GvisorPlatform(HostEnv& env) : ContainerPlatform(env, MakeParams()) {}

 private:
  static Params MakeParams();
};

// gVisor with checkpoint/restore starts: Table 1's snapshot-graded gVisor.
class GvisorSnapshotPlatform : public ContainerPlatform {
 public:
  explicit GvisorSnapshotPlatform(HostEnv& env) : ContainerPlatform(env, MakeParams()) {}

 private:
  static Params MakeParams();
};

}  // namespace fwbaselines

#endif  // FIREWORKS_SRC_BASELINES_CONTAINER_PLATFORM_H_
