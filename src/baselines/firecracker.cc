#include "src/baselines/firecracker.h"

#include <utility>

#include "src/base/check.h"
#include "src/base/strings.h"
#include "src/baselines/util.h"

namespace fwbaselines {

using fwbase::SimTime;
using fwlang::ExecEnv;
using fwlang::GuestProcess;
using fwvmm::MicroVm;

FirecrackerPlatform::FirecrackerPlatform(HostEnv& env) : FirecrackerPlatform(env, Config()) {}

FirecrackerPlatform::FirecrackerPlatform(HostEnv& env, const Config& config)
    : env_(env),
      config_(config),
      hv_(env.sim(), env.memory(), env.snapshot_store(), config.hv_config),
      tracer_(&env.tracer()) {
  hv_.set_observability(&env.obs());
  hv_.set_fault_injector(&env.fault_injector());
}

FirecrackerPlatform::~FirecrackerPlatform() { ReleaseInstances(); }

fwlang::GuestProcess::FaultCharger FirecrackerPlatform::ChargerFor(MicroVm* vm) {
  return [this, vm](const fwmem::FaultCounts& faults) {
    return hv_.FaultServiceTime(*vm, faults);
  };
}

fwsim::Co<Result<InstallResult>> FirecrackerPlatform::Install(
    const fwlang::FunctionSource& fn) {
  if (installed_.count(fn.name) != 0) {
    co_return Status::AlreadyExists("function " + fn.name + " already installed");
  }
  const SimTime t0 = env_.sim().Now();
  InstalledFunction record;
  record.source = std::make_unique<fwlang::FunctionSource>(fn);

  // Dependencies (npm/pip) are baked into the function's rootfs at deploy
  // time; cold starts only pay boot + load.
  if (fn.package_bytes > 0) {
    const double mib = static_cast<double>(fn.package_bytes) / static_cast<double>(fwbase::kMiB);
    co_await fwsim::Delay(env_.sim(),
                          fwlang::RuntimeCosts::For(fn.language).package_install_cost_per_mib *
                              mib);
    co_await env_.host_fs().WriteFile(fn.package_bytes);
  }

  if (config_.mode == FirecrackerMode::kOsSnapshot) {
    // Snapshot right after the guest OS finishes booting (§5.5).
    MicroVm* vm = co_await hv_.CreateMicroVm("fcos-install-" + fn.name, config_.vm_config);
    Status booted = co_await hv_.BootGuestOs(*vm);
    if (!booted.ok()) {
      FW_CHECK(hv_.Destroy(*vm).ok());
      co_return booted;
    }
    auto image = co_await hv_.CreateSnapshot(*vm, "fcos-" + fn.name);
    if (!image.ok()) {
      // Persisting the OS snapshot failed: release the install VM before
      // surfacing the error.
      FW_CHECK(hv_.Destroy(*vm).ok());
      co_return image.status();
    }
    (void)env_.snapshot_store().Pin("fcos-" + fn.name);
    FW_CHECK(hv_.Destroy(*vm).ok());
    record.os_snapshot_taken = true;
  }

  InstallResult result;
  result.total = env_.sim().Now() - t0;
  installed_.emplace(fn.name, std::move(record));
  co_return result;
}

fwsim::Co<Result<std::unique_ptr<FirecrackerPlatform::Sandbox>>>
FirecrackerPlatform::LaunchSandbox(const InstalledFunction& fn,
                                   const std::string& sandbox_name) {
  auto sandbox = std::make_unique<Sandbox>();
  if (config_.mode == FirecrackerMode::kOsSnapshot) {
    FW_CHECK(fn.os_snapshot_taken);
    auto restored = co_await hv_.RestoreMicroVm("fcos-" + fn.source->name, sandbox_name);
    if (restored.ok()) {
      sandbox->vm = *restored;
      // Post-restore guest-kernel activity.
      auto& space = sandbox->vm->address_space();
      fwmem::FaultCounts faults;
      const auto kern = space.SegmentByName(fwvmm::kSegGuestKernel);
      const auto os = space.SegmentByName(fwvmm::kSegGuestOs);
      faults += space.TouchRandomFraction(kern, config_.guest_os_resume_touch_fraction, 7);
      faults += space.TouchRandomFraction(os, config_.guest_os_resume_touch_fraction, 8);
      faults += space.DirtyRandomFraction(kern, config_.guest_os_resume_dirty_fraction,
                                          3000 + next_instance_);
      faults += space.DirtyRandomFraction(os, config_.guest_os_resume_dirty_fraction,
                                          4000 + next_instance_);
      co_await hv_.ServiceFaults(*sandbox->vm, faults);
    } else {
      // Snapshot path failed (restore crash, corrupted or evicted image):
      // degrade to a full guest-OS boot.
      env_.metrics().GetCounter("fc.coldboot_fallback.count").Increment();
      sandbox->vm = co_await hv_.CreateMicroVm(sandbox_name, config_.vm_config);
      Status booted = co_await hv_.BootGuestOs(*sandbox->vm);
      if (!booted.ok()) {
        co_return booted;
      }
    }
  } else {
    sandbox->vm = co_await hv_.CreateMicroVm(sandbox_name, config_.vm_config);
    Status booted = co_await hv_.BootGuestOs(*sandbox->vm);
    if (!booted.ok()) {
      co_return booted;
    }
  }
  sandbox->fs = std::make_unique<fwstore::Filesystem>(env_.sim(), env_.disk(),
                                                      fwstore::FsKind::kVirtio);
  ExecEnv guest_env(sandbox->fs.get(), &env_.db(), DirectNetSend(env_),
                    fwbase::Duration::Micros(400));
  sandbox->process =
      std::make_unique<GuestProcess>(env_.sim(), fn.source->language,
                                     sandbox->vm->address_space(), guest_env,
                                     ChargerFor(sandbox->vm));
  sandbox->process->set_mem_salt(next_instance_);
  co_await sandbox->process->BootRuntime();
  co_await sandbox->process->LoadApplication(*fn.source);
  co_return sandbox;
}

fwsim::Co<Status> FirecrackerPlatform::Prewarm(const std::string& fn_name) {
  auto it = installed_.find(fn_name);
  if (it == installed_.end()) {
    co_return Status::NotFound("function " + fn_name + " is not installed");
  }
  if (it->second.warm != nullptr) {
    co_return Status::Ok();
  }
  auto sandbox = co_await LaunchSandbox(
      it->second, fwbase::StrFormat("fc-warm-%s", fn_name.c_str()));
  if (!sandbox.ok()) {
    co_return sandbox.status();
  }
  // §5.1: pause the sandbox to keep it warm in memory.
  Status paused = co_await hv_.Pause(*(*sandbox)->vm);
  if (!paused.ok()) {
    co_return paused;
  }
  // Re-acquire after the suspensions above: holding `it` across a co_await
  // is only safe while no code path erases installed_ entries; re-finding
  // keeps that invariant local. Runtime impact: one extra map lookup per
  // prewarm; behaviour is unchanged while the entry still exists.
  it = installed_.find(fn_name);
  if (it == installed_.end()) {
    co_return Status::NotFound("function " + fn_name + " removed during prewarm");
  }
  it->second.warm = *std::move(sandbox);
  co_return Status::Ok();
}

fwsim::Co<Result<InvocationResult>> FirecrackerPlatform::Invoke(const std::string& fn_name,
                                                                const std::string& args,
                                                                const InvokeOptions& options) {
  auto it = installed_.find(fn_name);
  if (it == installed_.end()) {
    co_return Status::NotFound("function " + fn_name + " is not installed");
  }
  InstalledFunction& fn = it->second;
  InvocationResult result;
  const SimTime t0 = env_.sim().Now();
  fwobs::ScopedSpan root(tracer_, "firecracker.invoke", "invoke");
  root.SetAttribute("function", fn_name);
  fwobs::ScopedSpan startup_span(tracer_, "invoke.startup", "invoke");
  co_await fwsim::Delay(env_.sim(), config_.request_cost);

  std::unique_ptr<Sandbox> sandbox;
  if (fn.warm != nullptr && !options.force_cold) {
    // Warm start: resume the paused sandbox.
    result.cold = false;
    sandbox = std::move(fn.warm);
    Status resumed = co_await hv_.Resume(*sandbox->vm);
    if (!resumed.ok()) {
      // The VMM process died resuming the warm sandbox: discard the dead
      // sandbox and degrade to a cold start.
      env_.metrics().GetCounter("fc.warm_resume_crash.count").Increment();
      DestroySandbox(*sandbox);
      sandbox.reset();
      result.cold = true;
      result.attempts = 2;
      result.cold_boot_fallback = true;
    }
  } else {
    result.cold = true;
  }
  if (sandbox == nullptr) {
    auto launched = co_await LaunchSandbox(
        fn, fwbase::StrFormat("fc-%s-%llu", fn_name.c_str(),
                              static_cast<unsigned long long>(next_instance_)));
    if (!launched.ok()) {
      co_return launched.status();
    }
    sandbox = *std::move(launched);
  }
  ++next_instance_;
  root.SetAttribute("cold", result.cold ? "true" : "false");
  startup_span.End();
  const SimTime t_ready = env_.sim().Now();

  // Arguments arrive over the VM's network interface.
  fwobs::ScopedSpan params_span(tracer_, "invoke.params", "invoke");
  co_await fwsim::Delay(env_.sim(), fwbase::Duration::Micros(60) +
                                        env_.network().TransferTime(args.size()));
  params_span.End();
  const SimTime t_args = env_.sim().Now();

  fwobs::ScopedSpan exec_span(tracer_, "invoke.exec", "invoke");
  result.exec_stats =
      co_await sandbox->process->CallMethod(fn.source->entry_method, options.type_sig);
  exec_span.End();
  const SimTime t_exec_done = env_.sim().Now();

  // HTTP response back out (579 bytes: §5.2.1's 79-byte body + 500-byte
  // header shape).
  fwobs::ScopedSpan response_span(tracer_, "invoke.response", "invoke");
  co_await fwsim::Delay(env_.sim(), fwbase::Duration::Micros(60) +
                                        env_.network().TransferTime(579));
  response_span.End();
  const SimTime t_done = env_.sim().Now();

  result.startup = t_ready - t0;
  result.exec = t_exec_done - t_args;
  result.others = (t_args - t_ready) + (t_done - t_exec_done);
  result.total = t_done - t0;
  // Close at t_done, before keep-alive pause / steady-state work.
  root.End();
  result.root_span = root.get();

  if (options.keep_instance) {
    if (options.steady_state && config_.mode == FirecrackerMode::kOsSnapshot) {
      // Steady-state guest residency for long-running restored instances.
      auto& space = sandbox->vm->address_space();
      fwmem::FaultCounts faults;
      const auto kern = space.SegmentByName(fwvmm::kSegGuestKernel);
      const auto os = space.SegmentByName(fwvmm::kSegGuestOs);
      faults += space.TouchRandomFraction(kern, config_.guest_os_steady_touch_fraction, 7);
      faults += space.TouchRandomFraction(os, config_.guest_os_steady_touch_fraction, 8);
      faults += space.DirtyRandomFraction(kern, config_.guest_os_steady_dirty_fraction,
                                          5000 + next_instance_);
      faults += space.DirtyRandomFraction(os, config_.guest_os_steady_dirty_fraction,
                                          6000 + next_instance_);
      co_await hv_.ServiceFaults(*sandbox->vm, faults);
    }
    kept_.push_back(std::move(sandbox));
  } else {
    // The sandbox stays warm for the next request (§2.2 keep-alive).
    Status paused = co_await hv_.Pause(*sandbox->vm);
    FW_CHECK(paused.ok());
    fn.warm = std::move(sandbox);
  }
  co_return result;
}

void FirecrackerPlatform::DestroySandbox(Sandbox& sandbox) {
  if (sandbox.vm != nullptr) {
    FW_CHECK(hv_.Destroy(*sandbox.vm).ok());
    sandbox.vm = nullptr;
  }
}

void FirecrackerPlatform::ReleaseInstances() {
  for (auto& sandbox : kept_) {
    DestroySandbox(*sandbox);
  }
  kept_.clear();
  for (auto& [name, fn] : installed_) {
    if (fn.warm != nullptr) {
      DestroySandbox(*fn.warm);
      fn.warm.reset();
    }
  }
}

double FirecrackerPlatform::MeasurePssBytes() const {
  double total = 0.0;
  for (const auto& sandbox : kept_) {
    if (sandbox->vm != nullptr) {
      total += sandbox->vm->address_space().pss_bytes();
    }
  }
  for (const auto& [name, fn] : installed_) {
    if (fn.warm != nullptr && fn.warm->vm != nullptr) {
      total += fn.warm->vm->address_space().pss_bytes();
    }
  }
  return total;
}

bool FirecrackerPlatform::HasWarmSandbox(const std::string& fn_name) const {
  auto it = installed_.find(fn_name);
  return it != installed_.end() && it->second.warm != nullptr;
}

}  // namespace fwbaselines
