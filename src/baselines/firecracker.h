// FirecrackerPlatform: plain Firecracker as a sandbox manager (§2.3, §5.1),
// plus the "+VM-level OS snapshot" factor of the §5.5 ablation.
//
// Modes:
//   * kNoSnapshot — the paper's "Firecracker" baseline. Cold start boots the
//     VM, guest OS, language runtime and loads the function; warm start
//     resumes a paused, pre-installed sandbox (Prewarm implements the §5.1
//     methodology). No source annotation: JIT happens only when the runtime's
//     own profiler triggers it.
//   * kOsSnapshot — installs by snapshotting right after the guest OS boots;
//     invocation restores that snapshot and still pays runtime launch +
//     application load + profile-driven JIT (Fig 11/12 middle factor).
#ifndef FIREWORKS_SRC_BASELINES_FIRECRACKER_H_
#define FIREWORKS_SRC_BASELINES_FIRECRACKER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/platform.h"
#include "src/vmm/hypervisor.h"

namespace fwbaselines {

using fwcore::Duration;
using fwcore::HostEnv;
using fwcore::InstallResult;
using fwcore::InvocationResult;
using fwcore::InvokeOptions;
using fwcore::Result;
using fwcore::Status;

enum class FirecrackerMode { kNoSnapshot, kOsSnapshot };

class FirecrackerPlatform : public fwcore::ServerlessPlatform {
 public:
  struct Config {
    Config() {}

    // A sandbox manager is driven directly; minimal per-request handling.
    Duration request_cost = Duration::Micros(250);
    FirecrackerMode mode = FirecrackerMode::kNoSnapshot;
    // Post-restore guest-kernel activity (kOsSnapshot restores), split into
    // the resume critical path and long-lived steady state as in Fireworks.
    double guest_os_resume_touch_fraction = 0.04;
    double guest_os_resume_dirty_fraction = 0.02;
    double guest_os_steady_touch_fraction = 0.80;
    double guest_os_steady_dirty_fraction = 0.62;
    fwvmm::MicroVmConfig vm_config;
    fwvmm::Hypervisor::Config hv_config;
  };

  explicit FirecrackerPlatform(HostEnv& env);
  FirecrackerPlatform(HostEnv& env, const Config& config);
  ~FirecrackerPlatform() override;

  std::string name() const override {
    return config_.mode == FirecrackerMode::kNoSnapshot ? "firecracker"
                                                        : "firecracker+os-snapshot";
  }

  fwsim::Co<Result<InstallResult>> Install(const fwlang::FunctionSource& fn) override;
  fwsim::Co<Result<InvocationResult>> Invoke(const std::string& fn_name,
                                             const std::string& args,
                                             const InvokeOptions& options) override;
  fwsim::Co<Status> Prewarm(const std::string& fn_name) override;

  double MeasurePssBytes() const override;
  void ReleaseInstances() override;

  bool HasWarmSandbox(const std::string& fn_name) const;
  fwvmm::Hypervisor& hypervisor() { return hv_; }

 private:
  struct Sandbox {
    fwvmm::MicroVm* vm = nullptr;
    std::unique_ptr<fwstore::Filesystem> fs;
    std::unique_ptr<fwlang::GuestProcess> process;
  };
  struct InstalledFunction {
    std::unique_ptr<fwlang::FunctionSource> source;
    std::unique_ptr<Sandbox> warm;       // Paused warm sandbox, if any.
    bool os_snapshot_taken = false;
  };

  // Boots a fresh sandbox up to "application loaded" (the §5.1 warm point).
  fwsim::Co<Result<std::unique_ptr<Sandbox>>> LaunchSandbox(const InstalledFunction& fn,
                                                            const std::string& sandbox_name);
  fwlang::GuestProcess::FaultCharger ChargerFor(fwvmm::MicroVm* vm);
  void DestroySandbox(Sandbox& sandbox);

  HostEnv& env_;
  Config config_;
  fwvmm::Hypervisor hv_;
  fwobs::Tracer* tracer_;
  std::map<std::string, InstalledFunction> installed_;
  std::vector<std::unique_ptr<Sandbox>> kept_;
  uint64_t next_instance_ = 1;
};

}  // namespace fwbaselines

#endif  // FIREWORKS_SRC_BASELINES_FIRECRACKER_H_
