#include "src/baselines/isolate.h"

#include <utility>

#include "src/base/check.h"
#include "src/baselines/util.h"

namespace fwbaselines {

using fwbase::SimTime;
using fwcore::InstallResult;
using fwcore::InvocationResult;
using fwcore::InvokeOptions;
using fwcore::Result;
using fwcore::Status;
using fwlang::ExecEnv;
using fwlang::GuestProcess;

IsolatePlatform::IsolatePlatform(fwcore::HostEnv& env) : env_(env) {}

IsolatePlatform::~IsolatePlatform() { ReleaseInstances(); }

std::shared_ptr<fwmem::SnapshotImage> IsolatePlatform::RuntimeImageFor(
    fwlang::Language language) {
  auto it = runtime_images_.find(language);
  if (it != runtime_images_.end()) {
    return it->second;
  }
  auto image = BuildRuntimeRootfs(env_, language);
  runtime_images_.emplace(language, image);
  return image;
}

fwsim::Co<Result<InstallResult>> IsolatePlatform::Install(const fwlang::FunctionSource& fn) {
  if (installed_.count(fn.name) != 0) {
    co_return Status::AlreadyExists("function " + fn.name + " already installed");
  }
  const SimTime t0 = env_.sim().Now();
  InstalledFunction record;
  record.source = std::make_unique<fwlang::FunctionSource>(fn);
  RuntimeImageFor(fn.language);
  // Script upload/validation at the edge.
  co_await fwsim::Delay(env_.sim(), fwbase::Duration::Millis(8));
  InstallResult result;
  result.total = env_.sim().Now() - t0;
  installed_.emplace(fn.name, std::move(record));
  co_return result;
}

fwsim::Co<Result<InvocationResult>> IsolatePlatform::Invoke(const std::string& fn_name,
                                                            const std::string& args,
                                                            const InvokeOptions& options) {
  auto it = installed_.find(fn_name);
  if (it == installed_.end()) {
    co_return Status::NotFound("function " + fn_name + " is not installed");
  }
  InstalledFunction& fn = it->second;
  InvocationResult result;
  const SimTime t0 = env_.sim().Now();
  fwobs::ScopedSpan root(&env_.tracer(), "isolate.invoke", "invoke");
  root.SetAttribute("function", fn_name);
  fwobs::ScopedSpan startup_span(&env_.tracer(), "invoke.startup", "invoke");
  co_await fwsim::Delay(env_.sim(), fwbase::Duration::Micros(120));  // Router.

  if (fn.isolate == nullptr || options.force_cold) {
    if (fn.isolate != nullptr) {
      fn.isolate.reset();
    }
    result.cold = true;
    auto isolate = std::make_unique<Isolate>();
    isolate->space = std::make_unique<fwmem::AddressSpace>(
        env_.memory(), RuntimeImageFor(fn.source->language));
    isolate->fs = std::make_unique<fwstore::Filesystem>(env_.sim(), env_.disk(),
                                                        fwstore::FsKind::kHostDirect);
    fwmem::AddressSpace* space = isolate->space.get();
    auto charger = [](const fwmem::FaultCounts& faults) {
      // In-process faults: page-cache minors and fresh anon pages only.
      return fwbase::Duration::Nanos(1100) * static_cast<int64_t>(faults.Faults());
    };
    ExecEnv guest_env(isolate->fs.get(), &env_.db(), DirectNetSend(env_),
                      fwbase::Duration::Micros(350));
    isolate->process = std::make_unique<GuestProcess>(env_.sim(), fn.source->language, *space,
                                                      guest_env, charger);
    isolate->process->set_mem_salt(next_instance_++);
    co_await isolate->process->AttachRuntime();
    co_await isolate->process->LoadApplication(*fn.source);
    fn.isolate = std::move(isolate);
  } else {
    result.cold = false;
  }
  root.SetAttribute("cold", result.cold ? "true" : "false");
  startup_span.End();
  const SimTime t_ready = env_.sim().Now();

  fwobs::ScopedSpan params_span(&env_.tracer(), "invoke.params", "invoke");
  co_await fwsim::Delay(env_.sim(), fwbase::Duration::Micros(60) +
                                        env_.network().TransferTime(args.size()));
  params_span.End();
  const SimTime t_args = env_.sim().Now();

  fwobs::ScopedSpan exec_span(&env_.tracer(), "invoke.exec", "invoke");
  result.exec_stats =
      co_await fn.isolate->process->CallMethod(fn.source->entry_method, options.type_sig);
  exec_span.End();
  const SimTime t_exec_done = env_.sim().Now();

  fwobs::ScopedSpan response_span(&env_.tracer(), "invoke.response", "invoke");
  co_await fwsim::Delay(env_.sim(), fwbase::Duration::Micros(60) +
                                        env_.network().TransferTime(579));
  response_span.End();
  const SimTime t_done = env_.sim().Now();

  result.startup = t_ready - t0;
  result.exec = t_exec_done - t_args;
  result.others = (t_args - t_ready) + (t_done - t_exec_done);
  result.total = t_done - t0;
  root.End();
  result.root_span = root.get();
  co_return result;
}

void IsolatePlatform::ReleaseInstances() {
  for (auto& [name, fn] : installed_) {
    fn.isolate.reset();
  }
}

double IsolatePlatform::MeasurePssBytes() const {
  double total = 0.0;
  for (const auto& [name, fn] : installed_) {
    if (fn.isolate != nullptr) {
      total += fn.isolate->space->pss_bytes();
    }
  }
  return total;
}

bool IsolatePlatform::HasIsolate(const std::string& fn_name) const {
  auto it = installed_.find(fn_name);
  return it != installed_.end() && it->second.isolate != nullptr;
}

}  // namespace fwbaselines
