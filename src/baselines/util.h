// Shared helpers for the baseline platforms.
#ifndef FIREWORKS_SRC_BASELINES_UTIL_H_
#define FIREWORKS_SRC_BASELINES_UTIL_H_

#include <functional>
#include <memory>

#include "src/core/platform.h"
#include "src/lang/runtime_model.h"
#include "src/mem/address_space.h"

namespace fwbaselines {

// Egress for sandboxes without per-clone NAT: wire latency + transfer only.
std::function<fwsim::Co<void>(uint64_t)> DirectNetSend(fwcore::HostEnv& env);

// Builds (and caches in the page cache) the rootfs image of a language
// runtime: the binary text containers share across instances. The returned
// image contains a fully-populated `runtime_text` segment.
std::shared_ptr<fwmem::SnapshotImage> BuildRuntimeRootfs(fwcore::HostEnv& env,
                                                         fwlang::Language language);

}  // namespace fwbaselines

#endif  // FIREWORKS_SRC_BASELINES_UTIL_H_
