#include "src/baselines/util.h"

#include "src/base/check.h"

namespace fwbaselines {

std::function<fwsim::Co<void>(uint64_t)> DirectNetSend(fwcore::HostEnv& env) {
  fwcore::HostEnv* env_ptr = &env;
  return [env_ptr](uint64_t bytes) -> fwsim::Co<void> {
    co_await fwsim::Delay(env_ptr->sim(), fwbase::Duration::Micros(60) +
                                              env_ptr->network().TransferTime(bytes));
  };
}

std::shared_ptr<fwmem::SnapshotImage> BuildRuntimeRootfs(fwcore::HostEnv& env,
                                                         fwlang::Language language) {
  const fwlang::RuntimeCosts costs = fwlang::RuntimeCosts::For(language);
  fwmem::AddressSpace builder(env.memory());
  const fwmem::SegmentId text = builder.AddSegment(fwlang::kSegRuntimeText,
                                                   costs.runtime_text_bytes);
  builder.DirtyBytes(text, costs.runtime_text_bytes);
  auto image = builder.TakeSnapshot(std::string("rootfs-") + fwlang::LanguageName(language));
  image->set_cache_warm(true);
  return image;
}

}  // namespace fwbaselines
