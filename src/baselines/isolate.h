// IsolatePlatform: a Cloudflare-Workers-style runtime-sandbox platform
// (§2.3, Table 1). One long-running V8 process hosts hundreds of isolates;
// a function's first invocation creates its isolate and loads the script,
// later invocations run directly. High performance and memory sharing, but
// only runtime-level isolation (all functions share one OS process).
#ifndef FIREWORKS_SRC_BASELINES_ISOLATE_H_
#define FIREWORKS_SRC_BASELINES_ISOLATE_H_

#include <map>
#include <memory>
#include <string>

#include "src/core/platform.h"

namespace fwbaselines {

class IsolatePlatform : public fwcore::ServerlessPlatform {
 public:
  explicit IsolatePlatform(fwcore::HostEnv& env);
  ~IsolatePlatform() override;

  std::string name() const override { return "isolate"; }

  fwsim::Co<fwcore::Result<fwcore::InstallResult>> Install(
      const fwlang::FunctionSource& fn) override;
  fwsim::Co<fwcore::Result<fwcore::InvocationResult>> Invoke(
      const std::string& fn_name, const std::string& args,
      const fwcore::InvokeOptions& options) override;

  double MeasurePssBytes() const override;
  void ReleaseInstances() override;

  bool HasIsolate(const std::string& fn_name) const;

 private:
  struct Isolate {
    std::unique_ptr<fwmem::AddressSpace> space;
    std::unique_ptr<fwstore::Filesystem> fs;
    std::unique_ptr<fwlang::GuestProcess> process;
  };
  struct InstalledFunction {
    std::unique_ptr<fwlang::FunctionSource> source;
    std::unique_ptr<Isolate> isolate;  // Created lazily on first invocation.
  };

  std::shared_ptr<fwmem::SnapshotImage> RuntimeImageFor(fwlang::Language language);

  fwcore::HostEnv& env_;
  std::map<std::string, InstalledFunction> installed_;
  std::map<fwlang::Language, std::shared_ptr<fwmem::SnapshotImage>> runtime_images_;
  uint64_t next_instance_ = 1;
};

}  // namespace fwbaselines

#endif  // FIREWORKS_SRC_BASELINES_ISOLATE_H_
