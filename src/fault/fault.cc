#include "src/fault/fault.h"

#include <cstdlib>
#include <utility>

#include "src/base/strings.h"

namespace fwfault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kVmCrashOnResume:
      return "vm_crash_on_resume";
    case FaultKind::kVmCrashDuringExec:
      return "vm_crash_during_exec";
    case FaultKind::kSnapshotCorruption:
      return "snapshot_corruption";
    case FaultKind::kDiskReadError:
      return "disk_read_error";
    case FaultKind::kDiskWriteError:
      return "disk_write_error";
    case FaultKind::kBrokerDropMessage:
      return "broker_drop_message";
    case FaultKind::kBrokerDuplicateMessage:
      return "broker_duplicate_message";
    case FaultKind::kBrokerDelayMessage:
      return "broker_delay_message";
    case FaultKind::kNetLinkLoss:
      return "net_link_loss";
    case FaultKind::kNetNatExhausted:
      return "net_nat_exhausted";
    case FaultKind::kSandboxCrash:
      return "sandbox_crash";
    case FaultKind::kHeartbeatLoss:
      return "heartbeat_loss";
    case FaultKind::kHostSlowdown:
      return "host_slowdown";
    case FaultKind::kChunkCorruption:
      return "chunk_corruption";
    case FaultKind::kRegistryUnreachable:
      return "registry_unreachable";
    case FaultKind::kZoneOutage:
      return "zone_outage";
    case FaultKind::kCount:
      break;
  }
  return "?";
}

FaultPlan& FaultPlan::Set(FaultKind kind, double probability, uint64_t max_trips) {
  FW_CHECK_MSG(probability >= 0.0 && probability <= 1.0, "probability outside [0, 1]");
  auto& spec = specs_[static_cast<size_t>(kind)];
  spec.probability = probability;
  spec.max_trips = max_trips;
  return *this;
}

FaultPlan& FaultPlan::SetWindow(FaultKind kind, SimTime start, SimTime end) {
  auto& spec = specs_[static_cast<size_t>(kind)];
  spec.window_start = start;
  spec.window_end = end;
  return *this;
}

bool FaultPlan::empty() const {
  for (const auto& spec : specs_) {
    if (spec.enabled()) {
      return false;
    }
  }
  return true;
}

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty() || spec == "none") {
    return plan;
  }
  for (const std::string& item : fwbase::StrSplit(spec, ',')) {
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault spec item '" + item + "' is not kind=prob");
    }
    const std::string name = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    char* end = nullptr;
    const double p = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("bad probability '" + value + "' for fault " + name);
    }
    bool found = false;
    for (int k = 0; k < kFaultKindCount; ++k) {
      if (name == FaultKindName(static_cast<FaultKind>(k))) {
        plan.Set(static_cast<FaultKind>(k), p);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown fault kind '" + name + "'");
    }
  }
  return plan;
}

namespace {

template <size_t... I>
std::array<fwbase::Rng, sizeof...(I)> ForkStreams(fwbase::Rng& master,
                                                  std::index_sequence<I...>) {
  // Braced-init-list evaluation is left-to-right, so stream order is fixed.
  return {((void)I, master.Fork())...};
}

}  // namespace

FaultInjector::FaultInjector(fwsim::Simulation& sim, const FaultPlan& plan, uint64_t seed)
    : sim_(sim), plan_(plan), streams_([&] {
        fwbase::Rng master(seed);
        return ForkStreams(master, std::make_index_sequence<kFaultKindCount>{});
      }()) {}

bool FaultInjector::Trip(FaultKind kind) {
  const size_t idx = static_cast<size_t>(kind);
  ++opportunities_[idx];
  const FaultSpec& spec = plan_.spec(kind);
  if (!spec.enabled() || trips_[idx] >= spec.max_trips) {
    return false;
  }
  const SimTime now = sim_.Now();
  if (now < spec.window_start || now > spec.window_end) {
    return false;
  }
  if (!streams_[idx].Chance(spec.probability)) {
    return false;
  }
  ++trips_[idx];
  if (obs_ != nullptr) {
    obs_->metrics().GetCounter("fault.injected.count", FaultKindName(kind)).Increment();
  }
  return true;
}

Duration FaultInjector::SampleDelay(FaultKind kind, Duration mean) {
  return Duration::SecondsF(streams_[static_cast<size_t>(kind)].Exponential(mean.seconds()));
}

uint64_t FaultInjector::total_trips() const {
  uint64_t total = 0;
  for (uint64_t t : trips_) {
    total += t;
  }
  return total;
}

}  // namespace fwfault
