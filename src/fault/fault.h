// Deterministic fault injection for the simulator.
//
// A FaultPlan names which fault kinds can fire, with what per-opportunity
// probability, inside which simulated-time window, and up to what budget. A
// FaultInjector evaluates the plan at injection points threaded through the
// subsystems (hypervisor, snapshot store, block device, broker, network,
// container engine). Every subsystem treats its injector pointer as optional
// and an empty plan as inert: no randomness is drawn and no time is charged,
// so runs with an empty plan are bit-identical to runs without an injector.
//
// Determinism: the injector owns one dedicated RNG stream *per fault kind*,
// all derived from a single fault seed. Injection decisions therefore never
// perturb the simulation's own RNG, and opportunities of one kind never shift
// the decisions of another — the same (plan, seed, workload) always trips the
// same faults at the same simulated instants.
#ifndef FIREWORKS_SRC_FAULT_FAULT_H_
#define FIREWORKS_SRC_FAULT_FAULT_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/base/units.h"
#include "src/obs/observability.h"
#include "src/simcore/simulation.h"

namespace fwfault {

using fwbase::Duration;
using fwbase::Result;
using fwbase::SimTime;
using fwbase::Status;

enum class FaultKind {
  kVmCrashOnResume = 0,     // VMM process dies during snapshot restore/resume.
  kVmCrashDuringExec,       // Guest VM crashes while the function body runs.
  kSnapshotCorruption,      // Checksum mismatch when loading a stored image.
  kDiskReadError,           // Block-device read error (device retries).
  kDiskWriteError,          // Write error surfaced by the snapshot store.
  kBrokerDropMessage,       // Acked record never lands in the partition log.
  kBrokerDuplicateMessage,  // Record appended twice.
  kBrokerDelayMessage,      // Extra delivery latency before append.
  kNetLinkLoss,             // Packet lost on the wire.
  kNetNatExhausted,         // NAT port allocation fails when binding an IP.
  kSandboxCrash,            // Container sandbox dies on unpause/restore.
  kHeartbeatLoss,           // A host's liveness heartbeat is dropped en route.
  kHostSlowdown,            // Gray failure: the host serves, but slowly.
  kChunkCorruption,         // A fetched snapshot chunk fails digest check.
  kRegistryUnreachable,     // The snapshot registry drops a fetch RPC.
  kZoneOutage,              // Every host in one zone dies at the same instant.
  kCount,
};

inline constexpr int kFaultKindCount = static_cast<int>(FaultKind::kCount);

// Short stable identifier, e.g. "vm_crash_on_resume" (used by --faults= specs
// and metric labels).
const char* FaultKindName(FaultKind kind);

// Per-kind activation: probability per opportunity, an optional simulated-time
// window, and an optional trip budget.
struct FaultSpec {
  FaultSpec() {}

  double probability = 0.0;
  SimTime window_start = SimTime::Zero();
  SimTime window_end = SimTime::Max();
  uint64_t max_trips = UINT64_MAX;

  bool enabled() const { return probability > 0.0; }
};

class FaultPlan {
 public:
  FaultPlan() {}

  // Fluent setters so plans read like a table.
  FaultPlan& Set(FaultKind kind, double probability, uint64_t max_trips = UINT64_MAX);
  FaultPlan& SetWindow(FaultKind kind, SimTime start, SimTime end);

  const FaultSpec& spec(FaultKind kind) const {
    return specs_[static_cast<size_t>(kind)];
  }
  bool empty() const;

  // Parses "kind=prob,kind=prob,..." (e.g. "vm_crash_on_resume=0.05,
  // broker_drop_message=0.1"). "none" yields an empty plan. Unknown kinds and
  // probabilities outside [0, 1] are errors.
  static Result<FaultPlan> Parse(const std::string& spec);

 private:
  std::array<FaultSpec, kFaultKindCount> specs_;
};

class FaultInjector {
 public:
  // `seed` feeds the injector's dedicated RNG streams (one per kind).
  FaultInjector(fwsim::Simulation& sim, const FaultPlan& plan, uint64_t seed);

  // Optional: mirror trip counts into "fault.injected.count{kind}" metrics.
  void set_observability(fwobs::Observability* obs) { obs_ = obs; }

  // One injection opportunity: returns true if the fault fires now. Draws
  // randomness only for kinds the plan enables.
  bool Trip(FaultKind kind);

  // Extra latency for delay-type faults: exponential with the given mean,
  // from the kind's dedicated stream.
  Duration SampleDelay(FaultKind kind, Duration mean);

  uint64_t trips(FaultKind kind) const { return trips_[static_cast<size_t>(kind)]; }
  uint64_t opportunities(FaultKind kind) const {
    return opportunities_[static_cast<size_t>(kind)];
  }
  uint64_t total_trips() const;
  const FaultPlan& plan() const { return plan_; }

 private:
  fwsim::Simulation& sim_;
  FaultPlan plan_;
  std::array<fwbase::Rng, kFaultKindCount> streams_;
  std::array<uint64_t, kFaultKindCount> trips_{};
  std::array<uint64_t, kFaultKindCount> opportunities_{};
  fwobs::Observability* obs_ = nullptr;
};

}  // namespace fwfault

#endif  // FIREWORKS_SRC_FAULT_FAULT_H_
