// AddressSpace and SnapshotImage: the guest-physical memory of one sandbox.
//
// An AddressSpace is a flat, segment-labelled guest-physical space. Segments
// give the language-runtime and VMM layers names for the regions they manage
// (guest kernel, runtime code, JIT code cache, heap, …). Pages move through
// three states:
//
//   not-present ──read──▶ resident-shared (backed by a snapshot image page in
//                         the host page cache, charged 1/N to each mapper)
//   not-present ──write─▶ private (own host frame)
//   resident-shared ──write─▶ private (copy-on-write, own host frame)
//
// A *fresh* space (no image) models a cold-booted sandbox: the guest writes
// everything it loads, so both reads and writes of fresh content allocate
// private frames and nothing is shared between sandboxes.
//
// TakeSnapshot() freezes the current content into an immutable SnapshotImage;
// FromImage() creates a new space whose pages fault in lazily from the image,
// exactly the MAP_PRIVATE restore path of Firecracker snapshots (§3.3, Fig 4).
#ifndef FIREWORKS_SRC_MEM_ADDRESS_SPACE_H_
#define FIREWORKS_SRC_MEM_ADDRESS_SPACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/units.h"
#include "src/mem/backing_store.h"
#include "src/mem/host_memory.h"
#include "src/mem/page_set.h"

namespace fwmem {

using SegmentId = uint32_t;

struct SegmentLayout {
  std::string name;
  uint64_t base_page;
  uint64_t pages;
};

// Guest-visible identity state that a snapshot captures byte-for-byte along
// with memory: the runtime's PRNG state, its monotonic-clock base, and the
// counter behind "unique" request ids. Every clone restored from the same
// image wakes with an identical copy — the collision the vmgenid-style resume
// protocol exists to fix (DESIGN.md §15). `observed_generation` is the last
// VM generation the guest acknowledged; a restore that bumps the VM past it
// obligates a reseed before the clone serves traffic.
struct GuestIdentityRecord {
  uint64_t rng_state[4] = {0, 0, 0, 0};   // xoshiro256** state words
  int64_t monotonic_base_ns = 0;          // guest CLOCK_MONOTONIC at capture
  uint64_t next_request_id = 1;           // serial behind NextRequestId()
  uint64_t observed_generation = 0;       // last acknowledged VM generation
  bool valid = false;                     // false until a runtime seeds it
};

class SnapshotImage {
 public:
  SnapshotImage(HostMemory& host, std::string name, std::vector<SegmentLayout> segments,
                PageSet valid);

  const std::string& name() const { return name_; }
  const std::vector<SegmentLayout>& segments() const { return segments_; }
  uint64_t total_pages() const { return valid_.size(); }
  // Pages with stored content; determines the snapshot file size on disk.
  uint64_t valid_pages() const { return valid_.Count(); }
  uint64_t file_bytes() const { return valid_pages() * fwbase::kPageSize; }
  bool IsValid(uint64_t page) const { return valid_.Test(page); }

  BackingStore& backing() { return backing_; }
  const BackingStore& backing() const { return backing_; }

  // Whether the snapshot file's pages are resident in the host page cache.
  // A freshly-written image is warm (the installer just wrote it); a cold
  // image (host restart, cache pressure, remote store) pays a disk read per
  // first-touch fault until prefetched. Managed by the storage/VMM layers.
  bool cache_warm() const { return cache_warm_; }
  void set_cache_warm(bool warm) { cache_warm_ = warm; }

  // REAP working set (Ustiugov et al.): the image pages a first invocation
  // actually faulted in, recorded by the platform after the recording run.
  // Restores prefetch exactly these pages instead of the whole file.
  bool has_working_set() const { return working_set_ != nullptr; }
  const std::shared_ptr<const PageSet>& working_set() const { return working_set_; }
  void set_working_set(std::shared_ptr<const PageSet> ws) { working_set_ = std::move(ws); }
  uint64_t working_set_pages() const {
    return working_set_ != nullptr ? working_set_->Count() : 0;
  }
  uint64_t working_set_bytes() const { return working_set_pages() * fwbase::kPageSize; }

  // Guest identity frozen into this image at TakeSnapshot() time. Part of the
  // image like any other bytes: every space restored from it starts with this
  // exact record (see GuestIdentityRecord).
  const GuestIdentityRecord& guest_identity() const { return guest_identity_; }
  void set_guest_identity(const GuestIdentityRecord& identity) { guest_identity_ = identity; }

 private:
  bool cache_warm_ = false;
  std::string name_;
  std::vector<SegmentLayout> segments_;
  PageSet valid_;
  BackingStore backing_;
  std::shared_ptr<const PageSet> working_set_;
  GuestIdentityRecord guest_identity_;
};

// Per-access fault/accounting result; the caller (VMM / runtime) converts the
// counts into simulated latency.
struct FaultCounts {
  uint64_t major_faults = 0;   // Image content read from disk into the page cache.
  uint64_t minor_shared = 0;   // Mapped an image page already in the page cache.
  uint64_t zero_fills = 0;     // Read of content-less page (shared zero page, no frame).
  uint64_t cow_copies = 0;     // Write to a shared page; private frame allocated + copy.
  uint64_t fresh_writes = 0;   // Write with no prior content; private frame allocated.
  uint64_t already_mapped = 0; // No fault.

  uint64_t NewPrivatePages() const { return cow_copies + fresh_writes; }
  uint64_t Faults() const {
    return major_faults + minor_shared + zero_fills + cow_copies + fresh_writes;
  }
  FaultCounts& operator+=(const FaultCounts& o);
};

struct SegmentStats {
  std::string name;
  uint64_t pages = 0;
  uint64_t resident_shared = 0;
  uint64_t private_pages = 0;
  uint64_t zero_pages = 0;
};

class AddressSpace {
 public:
  // Fresh (cold-boot) space.
  explicit AddressSpace(HostMemory& host);
  // Space restored from a snapshot image: layout is cloned, every page starts
  // not-present and faults in from the image on access.
  AddressSpace(HostMemory& host, std::shared_ptr<SnapshotImage> image);
  ~AddressSpace();

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // Appends a segment; returns its id. Ids are dense and stable.
  SegmentId AddSegment(const std::string& name, uint64_t bytes);
  // Looks a segment up by name; FW_CHECKs that it exists.
  SegmentId SegmentByName(const std::string& name) const;
  bool HasSegment(const std::string& name) const;
  const std::vector<SegmentLayout>& segments() const { return segments_; }
  uint64_t SegmentPages(SegmentId seg) const;

  // Read access to [first, first+count) pages of a segment.
  FaultCounts Touch(SegmentId seg, uint64_t first, uint64_t count);
  // Write access to [first, first+count) pages of a segment.
  FaultCounts Dirty(SegmentId seg, uint64_t first, uint64_t count);
  // Prefix helpers operating on byte sizes (rounded up to pages).
  FaultCounts TouchBytes(SegmentId seg, uint64_t bytes);
  FaultCounts DirtyBytes(SegmentId seg, uint64_t bytes);
  // Writes a deterministic pseudo-random `fraction` of the segment's pages;
  // `salt` individualises the subset (different sandboxes dirty different
  // pages, so CoW sharing degrades realistically rather than uniformly).
  FaultCounts DirtyRandomFraction(SegmentId seg, double fraction, uint64_t salt);
  FaultCounts TouchRandomFraction(SegmentId seg, double fraction, uint64_t salt);

  // Freezes current content (resident ∪ private pages) into an image.
  std::shared_ptr<SnapshotImage> TakeSnapshot(const std::string& name) const;

  // Releases every frame and mapping (sandbox teardown). Idempotent.
  void Unmap();

  // smem-style metrics (§5.4). RSS counts all mapped pages including zero
  // pages; USS counts only private frames; PSS charges shared pages 1/refs.
  uint64_t rss_bytes() const;
  uint64_t uss_bytes() const;
  double pss_bytes() const;
  uint64_t shared_resident_pages() const { return resident_shared_.Count(); }
  uint64_t private_pages() const { return private_.Count(); }

  std::vector<SegmentStats> PerSegmentStats() const;

  bool image_backed() const { return image_ != nullptr; }
  const std::shared_ptr<SnapshotImage>& image() const { return image_; }

  // Pages this space faulted in *from the image* (major/minor reads and
  // read-then-privatise writes; zero-fills excluded). This is the raw signal
  // the REAP working-set recorder persists after a first invocation.
  const PageSet& image_touched() const { return image_touched_; }

  // Guest identity living in this space. The runtime model keeps it current
  // (it is guest memory, modeled explicitly instead of hidden in a segment);
  // TakeSnapshot() captures it and the image-backed constructor restores it.
  const GuestIdentityRecord& guest_identity() const { return guest_identity_; }
  void set_guest_identity(const GuestIdentityRecord& identity) { guest_identity_ = identity; }

 private:
  uint64_t GlobalPage(SegmentId seg, uint64_t offset) const;
  FaultCounts AccessRange(SegmentId seg, uint64_t first, uint64_t count, bool write);
  void AccessPage(uint64_t page, bool write, FaultCounts& out);
  void GrowTo(uint64_t pages);

  HostMemory& host_;
  std::shared_ptr<SnapshotImage> image_;
  std::vector<SegmentLayout> segments_;
  uint64_t total_pages_ = 0;
  PageSet resident_shared_;
  PageSet private_;
  PageSet zero_;
  PageSet image_touched_;
  GuestIdentityRecord guest_identity_;
  bool unmapped_ = false;
};

}  // namespace fwmem

#endif  // FIREWORKS_SRC_MEM_ADDRESS_SPACE_H_
