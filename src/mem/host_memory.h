// HostMemory: aggregate physical-frame accounting for one host machine.
//
// Every resident page on the host — whether a page-cache frame shared by many
// microVM mappings or a private anonymous frame — charges exactly one frame
// here. The Fig. 10 consolidation experiment launches microVMs until the
// "swapping" threshold is crossed, mirroring the paper's vm.swappiness = 60
// methodology (swapping is considered to start once 60 % of physical memory is
// consumed).
#ifndef FIREWORKS_SRC_MEM_HOST_MEMORY_H_
#define FIREWORKS_SRC_MEM_HOST_MEMORY_H_

#include <cstdint>

#include "src/base/units.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"

namespace fwmem {

class HostMemory {
 public:
  // `swap_start_fraction` models the vm.swappiness-style threshold: swapping
  // is reported once used/total exceeds it.
  explicit HostMemory(uint64_t total_bytes, double swap_start_fraction = 0.6);

  // Optional: mirror frame accounting into the host's metrics registry
  // ("mem.host.used_bytes" gauge, "mem.frame.alloc.count" counter). The
  // registry must outlive this object.
  void set_metrics(fwobs::MetricsRegistry* metrics);

  // Optional: attribute page-table-walk cost on every AddressSpace backed by
  // this host to the profiler's "mem.page_walk" scope. The profiler must
  // outlive this object; pass nullptr to detach.
  void set_profiler(fwobs::Profiler* profiler) {
    profiler_ = profiler;
    page_walk_scope_ = profiler == nullptr ? 0 : profiler->RegisterScope("mem.page_walk");
  }
  fwobs::Profiler* profiler() const { return profiler_; }
  fwobs::ProfScopeId page_walk_scope() const { return page_walk_scope_; }

  void AllocFrames(uint64_t n);
  void FreeFrames(uint64_t n);

  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t used_bytes() const { return used_frames_ * fwbase::kPageSize; }
  uint64_t used_frames() const { return used_frames_; }
  uint64_t peak_used_bytes() const { return peak_used_frames_ * fwbase::kPageSize; }
  uint64_t free_bytes() const { return total_bytes_ - used_bytes(); }

  // True once the swap threshold has been crossed.
  bool swapping() const;
  uint64_t swap_threshold_bytes() const;

  // Lifetime counters (for benches / sanity checks).
  uint64_t total_allocated_frames() const { return total_allocated_frames_; }
  uint64_t total_freed_frames() const { return total_freed_frames_; }

 private:
  uint64_t total_bytes_;
  double swap_start_fraction_;
  uint64_t used_frames_ = 0;
  uint64_t peak_used_frames_ = 0;
  uint64_t total_allocated_frames_ = 0;
  uint64_t total_freed_frames_ = 0;
  fwobs::Gauge* used_bytes_gauge_ = nullptr;
  fwobs::Counter* alloc_counter_ = nullptr;
  fwobs::Profiler* profiler_ = nullptr;
  fwobs::ProfScopeId page_walk_scope_ = 0;
};

}  // namespace fwmem

#endif  // FIREWORKS_SRC_MEM_HOST_MEMORY_H_
