#include "src/mem/backing_store.h"

#include "src/base/check.h"

namespace fwmem {

BackingStore::BackingStore(HostMemory& host, uint64_t num_pages)
    : host_(host), refs_(num_pages, 0) {}

BackingStore::~BackingStore() {
  // All mappings must unmap before the store dies; release whatever remains
  // resident (the page cache is dropped with the file).
  host_.FreeFrames(resident_pages_);
}

bool BackingStore::IncResident(uint64_t page) {
  FW_CHECK(page < refs_.size());
  const bool first = refs_[page] == 0;
  ++refs_[page];
  if (first) {
    host_.AllocFrames(1);
    ++resident_pages_;
  }
  return first;
}

void BackingStore::DecResident(uint64_t page) {
  FW_CHECK(page < refs_.size());
  FW_CHECK_MSG(refs_[page] > 0, "DecResident on non-resident page");
  --refs_[page];
  if (refs_[page] == 0) {
    host_.FreeFrames(1);
    --resident_pages_;
  }
}

uint32_t BackingStore::ResidentRefs(uint64_t page) const {
  FW_CHECK(page < refs_.size());
  return refs_[page];
}

}  // namespace fwmem
