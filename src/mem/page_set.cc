#include "src/mem/page_set.h"

#include <algorithm>
#include <bit>

#include "src/base/check.h"

namespace fwmem {

PageSet::PageSet(uint64_t num_pages) : num_pages_(num_pages), words_((num_pages + 63) / 64, 0) {}

void PageSet::Grow(uint64_t new_num_pages) {
  FW_CHECK(new_num_pages >= num_pages_);
  num_pages_ = new_num_pages;
  words_.resize((new_num_pages + 63) / 64, 0);
}

bool PageSet::Test(uint64_t page) const {
  FW_DCHECK(page < num_pages_);
  return (words_[page / 64] >> (page % 64)) & 1;
}

void PageSet::Set(uint64_t page) {
  FW_DCHECK(page < num_pages_);
  uint64_t& w = words_[page / 64];
  const uint64_t bit = 1ULL << (page % 64);
  if ((w & bit) == 0) {
    w |= bit;
    ++count_;
  }
}

void PageSet::Clear(uint64_t page) {
  FW_DCHECK(page < num_pages_);
  uint64_t& w = words_[page / 64];
  const uint64_t bit = 1ULL << (page % 64);
  if ((w & bit) != 0) {
    w &= ~bit;
    --count_;
  }
}

void PageSet::SetRange(uint64_t first, uint64_t count) {
  const uint64_t end = std::min(first + count, num_pages_);
  for (uint64_t p = first; p < end; ++p) {
    Set(p);
  }
}

void PageSet::ClearRange(uint64_t first, uint64_t count) {
  const uint64_t end = std::min(first + count, num_pages_);
  for (uint64_t p = first; p < end; ++p) {
    Clear(p);
  }
}

void PageSet::ClearAll() {
  std::fill(words_.begin(), words_.end(), 0);
  count_ = 0;
}

uint64_t PageSet::CountRange(uint64_t first, uint64_t count) const {
  const uint64_t end = std::min(first + count, num_pages_);
  uint64_t n = 0;
  for (uint64_t p = first; p < end; ++p) {
    if (Test(p)) {
      ++n;
    }
  }
  return n;
}

void PageSet::ForEachSet(const std::function<void(uint64_t)>& fn) const {
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      fn(wi * 64 + static_cast<uint64_t>(bit));
      w &= w - 1;
    }
  }
}

void PageSet::ForEachRange(const std::function<void(uint64_t, uint64_t)>& fn) const {
  bool open = false;
  uint64_t first = 0;
  uint64_t prev = 0;
  ForEachSet([&](uint64_t page) {
    if (open && page == prev + 1) {
      prev = page;
      return;
    }
    if (open) {
      fn(first, prev - first + 1);
    }
    open = true;
    first = page;
    prev = page;
  });
  if (open) {
    fn(first, prev - first + 1);
  }
}

void PageSet::UnionWith(const PageSet& other) {
  FW_CHECK(other.num_pages_ == num_pages_);
  uint64_t count = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
    count += static_cast<uint64_t>(std::popcount(words_[i]));
  }
  count_ = count;
}

}  // namespace fwmem
