// BackingStore: host-page-cache residency for shared, file-backed content.
//
// A snapshot image mapped MAP_PRIVATE into N microVMs is backed by one file;
// each image page that any mapper has faulted in occupies exactly one host
// frame (in the page cache) regardless of how many mappers reference it.
// BackingStore tracks the per-page reference count so PSS can charge each
// mapper 1/refs for shared pages, exactly like Linux's smem accounting in §5.4.
#ifndef FIREWORKS_SRC_MEM_BACKING_STORE_H_
#define FIREWORKS_SRC_MEM_BACKING_STORE_H_

#include <cstdint>
#include <vector>

#include "src/mem/host_memory.h"

namespace fwmem {

class BackingStore {
 public:
  BackingStore(HostMemory& host, uint64_t num_pages);
  ~BackingStore();

  BackingStore(const BackingStore&) = delete;
  BackingStore& operator=(const BackingStore&) = delete;

  uint64_t num_pages() const { return refs_.size(); }

  // Registers one more mapping referencing `page`. Returns true when the page
  // was not resident before (a major fault: the content came from disk and a
  // host frame was allocated).
  bool IncResident(uint64_t page);
  // Drops one reference; frees the host frame when the last mapper goes away.
  void DecResident(uint64_t page);

  uint32_t ResidentRefs(uint64_t page) const;
  // Pages currently resident in the page cache (refs > 0).
  uint64_t resident_pages() const { return resident_pages_; }

 private:
  HostMemory& host_;
  std::vector<uint32_t> refs_;
  uint64_t resident_pages_ = 0;
};

}  // namespace fwmem

#endif  // FIREWORKS_SRC_MEM_BACKING_STORE_H_
