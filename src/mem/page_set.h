// PageSet: a dense bitmap over the pages of a memory region.
//
// The memory model tracks residency and CoW privatisation per 4 KiB page;
// PageSet is the underlying bit vector with the bulk operations those paths
// need (range set/clear, popcount, iteration over set bits).
#ifndef FIREWORKS_SRC_MEM_PAGE_SET_H_
#define FIREWORKS_SRC_MEM_PAGE_SET_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace fwmem {

class PageSet {
 public:
  explicit PageSet(uint64_t num_pages);

  uint64_t size() const { return num_pages_; }

  // Grows the region (new pages start clear). Shrinking is not supported.
  void Grow(uint64_t new_num_pages);

  bool Test(uint64_t page) const;
  void Set(uint64_t page);
  void Clear(uint64_t page);

  // Sets/clears [first, first + count); clamps to the region size.
  void SetRange(uint64_t first, uint64_t count);
  void ClearRange(uint64_t first, uint64_t count);
  void ClearAll();

  // Number of set bits.
  uint64_t Count() const { return count_; }
  // Number of set bits in [first, first + count).
  uint64_t CountRange(uint64_t first, uint64_t count) const;

  // Calls fn(page) for every set bit in ascending order.
  void ForEachSet(const std::function<void(uint64_t)>& fn) const;

  // Calls fn(first, count) for every maximal run of consecutive set bits, in
  // ascending order — the working-set persistence format.
  void ForEachRange(const std::function<void(uint64_t, uint64_t)>& fn) const;

  // this |= other (sizes must match).
  void UnionWith(const PageSet& other);

 private:
  uint64_t num_pages_;
  uint64_t count_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace fwmem

#endif  // FIREWORKS_SRC_MEM_PAGE_SET_H_
