#include "src/mem/address_space.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"

namespace fwmem {
namespace {

// Converts a fraction in [0,1] to a strict-less-than hash threshold. The
// double→u64 cast of 1.0 * 2^64 would overflow, so saturate explicitly.
uint64_t FractionThreshold(double fraction) {
  if (fraction >= 1.0) {
    return UINT64_MAX;
  }
  return static_cast<uint64_t>(fraction * 18446744073709551616.0 /* 2^64 */);
}

// Deterministic per-page hash used to pick pseudo-random page subsets.
uint64_t MixPage(uint64_t salt, uint64_t page) {
  uint64_t z = salt ^ (page * 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultCounts& FaultCounts::operator+=(const FaultCounts& o) {
  major_faults += o.major_faults;
  minor_shared += o.minor_shared;
  zero_fills += o.zero_fills;
  cow_copies += o.cow_copies;
  fresh_writes += o.fresh_writes;
  already_mapped += o.already_mapped;
  return *this;
}

SnapshotImage::SnapshotImage(HostMemory& host, std::string name,
                             std::vector<SegmentLayout> segments, PageSet valid)
    : name_(std::move(name)),
      segments_(std::move(segments)),
      valid_(std::move(valid)),
      backing_(host, valid_.size()) {}

AddressSpace::AddressSpace(HostMemory& host)
    : host_(host), resident_shared_(0), private_(0), zero_(0), image_touched_(0) {}

AddressSpace::AddressSpace(HostMemory& host, std::shared_ptr<SnapshotImage> image)
    : host_(host),
      image_(std::move(image)),
      segments_(image_->segments()),
      total_pages_(image_->total_pages()),
      resident_shared_(total_pages_),
      private_(total_pages_),
      zero_(total_pages_),
      image_touched_(total_pages_),
      guest_identity_(image_->guest_identity()) {}

AddressSpace::~AddressSpace() { Unmap(); }

void AddressSpace::GrowTo(uint64_t pages) {
  resident_shared_.Grow(pages);
  private_.Grow(pages);
  zero_.Grow(pages);
  image_touched_.Grow(pages);
  total_pages_ = pages;
}

SegmentId AddressSpace::AddSegment(const std::string& name, uint64_t bytes) {
  FW_CHECK(!unmapped_);
  const uint64_t pages = fwbase::PagesFor(bytes);
  segments_.push_back(SegmentLayout{name, total_pages_, pages});
  GrowTo(total_pages_ + pages);
  return static_cast<SegmentId>(segments_.size() - 1);
}

SegmentId AddressSpace::SegmentByName(const std::string& name) const {
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].name == name) {
      return static_cast<SegmentId>(i);
    }
  }
  FW_CHECK_MSG(false, ("no segment named " + name).c_str());
  return 0;
}

bool AddressSpace::HasSegment(const std::string& name) const {
  for (const auto& s : segments_) {
    if (s.name == name) {
      return true;
    }
  }
  return false;
}

uint64_t AddressSpace::SegmentPages(SegmentId seg) const {
  FW_CHECK(seg < segments_.size());
  return segments_[seg].pages;
}

uint64_t AddressSpace::GlobalPage(SegmentId seg, uint64_t offset) const {
  FW_CHECK(seg < segments_.size());
  FW_DCHECK(offset < segments_[seg].pages);
  return segments_[seg].base_page + offset;
}

void AddressSpace::AccessPage(uint64_t page, bool write, FaultCounts& out) {
  if (private_.Test(page)) {
    ++out.already_mapped;
    return;
  }
  const bool image_valid =
      image_ != nullptr && page < image_->total_pages() && image_->IsValid(page);

  if (!write) {
    if (resident_shared_.Test(page) || zero_.Test(page)) {
      ++out.already_mapped;
      return;
    }
    if (image_valid) {
      const bool was_major = image_->backing().IncResident(page);
      resident_shared_.Set(page);
      image_touched_.Set(page);
      if (was_major) {
        ++out.major_faults;
      } else {
        ++out.minor_shared;
      }
      return;
    }
    if (image_ == nullptr) {
      // Fresh space: a guest "reading" fresh content had to produce it first
      // (kernel decompression, file load into RAM) — private frame.
      host_.AllocFrames(1);
      private_.Set(page);
      ++out.fresh_writes;
      return;
    }
    // Image-backed space reading a page the image has no content for: shared
    // zero page, no frame charge.
    zero_.Set(page);
    ++out.zero_fills;
    return;
  }

  // Write access.
  if (resident_shared_.Test(page)) {
    // Copy-on-write: drop the shared reference, take a private frame.
    image_->backing().DecResident(page);
    resident_shared_.Clear(page);
    host_.AllocFrames(1);
    private_.Set(page);
    ++out.cow_copies;
    return;
  }
  if (zero_.Test(page)) {
    zero_.Clear(page);
    host_.AllocFrames(1);
    private_.Set(page);
    ++out.fresh_writes;
    return;
  }
  if (image_valid) {
    // Write to a not-yet-resident image page: the kernel still reads the
    // content, then immediately breaks the mapping private.
    host_.AllocFrames(1);
    private_.Set(page);
    image_touched_.Set(page);
    ++out.cow_copies;
    return;
  }
  host_.AllocFrames(1);
  private_.Set(page);
  ++out.fresh_writes;
}

FaultCounts AddressSpace::AccessRange(SegmentId seg, uint64_t first, uint64_t count,
                                      bool write) {
  FW_CHECK(!unmapped_);
  FW_CHECK(seg < segments_.size());
  FW_PROFILE_SCOPE_ID(host_.profiler(), host_.page_walk_scope());
  const auto& layout = segments_[seg];
  FW_CHECK_MSG(first + count <= layout.pages, "access beyond segment end");
  FaultCounts out;
  for (uint64_t i = 0; i < count; ++i) {
    AccessPage(layout.base_page + first + i, write, out);
  }
  return out;
}

FaultCounts AddressSpace::Touch(SegmentId seg, uint64_t first, uint64_t count) {
  return AccessRange(seg, first, count, /*write=*/false);
}

FaultCounts AddressSpace::Dirty(SegmentId seg, uint64_t first, uint64_t count) {
  return AccessRange(seg, first, count, /*write=*/true);
}

FaultCounts AddressSpace::TouchBytes(SegmentId seg, uint64_t bytes) {
  const uint64_t pages = std::min(fwbase::PagesFor(bytes), SegmentPages(seg));
  return Touch(seg, 0, pages);
}

FaultCounts AddressSpace::DirtyBytes(SegmentId seg, uint64_t bytes) {
  const uint64_t pages = std::min(fwbase::PagesFor(bytes), SegmentPages(seg));
  return Dirty(seg, 0, pages);
}

FaultCounts AddressSpace::DirtyRandomFraction(SegmentId seg, double fraction, uint64_t salt) {
  FW_CHECK(fraction >= 0.0 && fraction <= 1.0);
  FW_CHECK(seg < segments_.size());
  const auto& layout = segments_[seg];
  const uint64_t threshold = FractionThreshold(fraction);
  FaultCounts out;
  for (uint64_t i = 0; i < layout.pages; ++i) {
    if (fraction >= 1.0 || MixPage(salt, layout.base_page + i) < threshold) {
      AccessPage(layout.base_page + i, /*write=*/true, out);
    }
  }
  return out;
}

FaultCounts AddressSpace::TouchRandomFraction(SegmentId seg, double fraction, uint64_t salt) {
  FW_CHECK(fraction >= 0.0 && fraction <= 1.0);
  FW_CHECK(seg < segments_.size());
  const auto& layout = segments_[seg];
  const uint64_t threshold = FractionThreshold(fraction);
  FaultCounts out;
  for (uint64_t i = 0; i < layout.pages; ++i) {
    if (fraction >= 1.0 || MixPage(salt, layout.base_page + i) < threshold) {
      AccessPage(layout.base_page + i, /*write=*/false, out);
    }
  }
  return out;
}

std::shared_ptr<SnapshotImage> AddressSpace::TakeSnapshot(const std::string& name) const {
  FW_CHECK(!unmapped_);
  PageSet valid(total_pages_);
  valid.UnionWith(resident_shared_);
  valid.UnionWith(private_);
  auto image = std::make_shared<SnapshotImage>(host_, name, segments_, std::move(valid));
  // The guest's identity record is memory content: it freezes into the image
  // with everything else, and every clone restored from the image inherits it.
  image->set_guest_identity(guest_identity_);
  return image;
}

void AddressSpace::Unmap() {
  if (unmapped_) {
    return;
  }
  if (image_ != nullptr) {
    resident_shared_.ForEachSet([this](uint64_t page) { image_->backing().DecResident(page); });
  }
  host_.FreeFrames(private_.Count());
  resident_shared_.ClearAll();
  private_.ClearAll();
  zero_.ClearAll();
  unmapped_ = true;
}

uint64_t AddressSpace::rss_bytes() const {
  return (resident_shared_.Count() + private_.Count() + zero_.Count()) * fwbase::kPageSize;
}

uint64_t AddressSpace::uss_bytes() const { return private_.Count() * fwbase::kPageSize; }

double AddressSpace::pss_bytes() const {
  double pss_pages = static_cast<double>(private_.Count());
  if (image_ != nullptr) {
    resident_shared_.ForEachSet([this, &pss_pages](uint64_t page) {
      pss_pages += 1.0 / static_cast<double>(image_->backing().ResidentRefs(page));
    });
  }
  return pss_pages * static_cast<double>(fwbase::kPageSize);
}

std::vector<SegmentStats> AddressSpace::PerSegmentStats() const {
  std::vector<SegmentStats> out;
  out.reserve(segments_.size());
  for (const auto& layout : segments_) {
    SegmentStats s;
    s.name = layout.name;
    s.pages = layout.pages;
    s.resident_shared = resident_shared_.CountRange(layout.base_page, layout.pages);
    s.private_pages = private_.CountRange(layout.base_page, layout.pages);
    s.zero_pages = zero_.CountRange(layout.base_page, layout.pages);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace fwmem
