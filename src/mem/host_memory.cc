#include "src/mem/host_memory.h"

#include "src/base/check.h"

namespace fwmem {

HostMemory::HostMemory(uint64_t total_bytes, double swap_start_fraction)
    : total_bytes_(total_bytes), swap_start_fraction_(swap_start_fraction) {
  FW_CHECK(total_bytes_ > 0);
  FW_CHECK(swap_start_fraction_ > 0.0 && swap_start_fraction_ <= 1.0);
}

void HostMemory::set_metrics(fwobs::MetricsRegistry* metrics) {
  used_bytes_gauge_ = &metrics->GetGauge("mem.host.used_bytes");
  alloc_counter_ = &metrics->GetCounter("mem.frame.alloc.count");
}

void HostMemory::AllocFrames(uint64_t n) {
  used_frames_ += n;
  total_allocated_frames_ += n;
  if (used_frames_ > peak_used_frames_) {
    peak_used_frames_ = used_frames_;
  }
  if (used_bytes_gauge_ != nullptr) {
    used_bytes_gauge_->Set(static_cast<double>(used_bytes()));
    alloc_counter_->Increment(n);
  }
}

void HostMemory::FreeFrames(uint64_t n) {
  FW_CHECK_MSG(n <= used_frames_, "freeing more frames than allocated");
  used_frames_ -= n;
  total_freed_frames_ += n;
  if (used_bytes_gauge_ != nullptr) {
    used_bytes_gauge_->Set(static_cast<double>(used_bytes()));
  }
}

bool HostMemory::swapping() const { return used_bytes() > swap_threshold_bytes(); }

uint64_t HostMemory::swap_threshold_bytes() const {
  return static_cast<uint64_t>(static_cast<double>(total_bytes_) * swap_start_fraction_);
}

}  // namespace fwmem
