#include "src/net/addr.h"

#include "src/base/strings.h"

namespace fwnet {

std::string IpAddr::ToString() const {
  return fwbase::StrFormat("%u.%u.%u.%u", (v_ >> 24) & 0xFF, (v_ >> 16) & 0xFF, (v_ >> 8) & 0xFF,
                           v_ & 0xFF);
}

std::string MacAddr::ToString() const {
  return fwbase::StrFormat("%02x:%02x:%02x:%02x:%02x:%02x",
                           static_cast<unsigned>((v_ >> 40) & 0xFF),
                           static_cast<unsigned>((v_ >> 32) & 0xFF),
                           static_cast<unsigned>((v_ >> 24) & 0xFF),
                           static_cast<unsigned>((v_ >> 16) & 0xFF),
                           static_cast<unsigned>((v_ >> 8) & 0xFF),
                           static_cast<unsigned>(v_ & 0xFF));
}

}  // namespace fwnet
