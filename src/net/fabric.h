// Cluster fabric: the network cost model for snapshot distribution.
//
// Hosts pull snapshot chunks from two places — the central registry (high
// latency, bandwidth shared across a bounded number of streams) and cluster
// peers (rack-local latency, per-transfer bandwidth). This type charges
// simulated time for those transfers and counts bytes by source; it carries
// no protocol. The fetch protocol (cache lookup, peer-before-registry,
// retries) lives in fwcluster::SnapshotDistribution, and the registry's
// state in fwstore::SnapshotRegistry.
#ifndef FIREWORKS_SRC_NET_FABRIC_H_
#define FIREWORKS_SRC_NET_FABRIC_H_

#include <cstdint>

#include "src/base/units.h"
#include "src/simcore/primitives.h"
#include "src/simcore/simulation.h"

namespace fwnet {

class ClusterFabric {
 public:
  struct Config {
    Config() {}

    // Round-trip to the registry service (metadata RPCs and per-stream
    // transfer setup).
    fwbase::Duration registry_rpc_latency = fwbase::Duration::Micros(120);
    // Rack-local peer round-trip.
    fwbase::Duration peer_rpc_latency = fwbase::Duration::Micros(60);
    // Per-stream sequential read bandwidth out of the registry's store.
    double registry_bandwidth_bytes_per_sec = 1.25e9;  // ~10 Gb/s.
    // Peer-to-peer transfer bandwidth (page-cache-hot source).
    double peer_bandwidth_bytes_per_sec = 2.5e9;
    // Concurrent transfer streams the registry serves; more block.
    int64_t registry_streams = 4;
  };

  ClusterFabric(fwsim::Simulation& sim, const Config& config)
      : sim_(sim), config_(config), registry_slots_(sim, config.registry_streams) {}

  // Charges one registry round-trip plus `bytes` of transfer, holding one of
  // the bounded registry streams for the duration.
  fwsim::Co<void> RegistryTransfer(uint64_t bytes);

  // Metadata-only registry RPC (manifest fetch): latency, no stream slot.
  fwsim::Co<void> RegistryRpc();

  // Charges a rack-local peer transfer of `bytes`.
  fwsim::Co<void> PeerTransfer(uint64_t bytes);

  uint64_t registry_transfers() const { return registry_transfers_; }
  uint64_t registry_bytes() const { return registry_bytes_; }
  uint64_t peer_transfers() const { return peer_transfers_; }
  uint64_t peer_bytes() const { return peer_bytes_; }

  const Config& config() const { return config_; }

 private:
  fwsim::Simulation& sim_;
  Config config_;
  fwsim::Resource registry_slots_;
  uint64_t registry_transfers_ = 0;
  uint64_t registry_bytes_ = 0;
  uint64_t peer_transfers_ = 0;
  uint64_t peer_bytes_ = 0;
};

}  // namespace fwnet

#endif  // FIREWORKS_SRC_NET_FABRIC_H_
