#include "src/net/fabric.h"

namespace fwnet {

namespace {

fwbase::Duration TransferTime(uint64_t bytes, double bytes_per_sec) {
  return fwbase::Duration::SecondsF(static_cast<double>(bytes) / bytes_per_sec);
}

}  // namespace

fwsim::Co<void> ClusterFabric::RegistryTransfer(uint64_t bytes) {
  co_await registry_slots_.Acquire();
  co_await fwsim::Delay(sim_, config_.registry_rpc_latency +
                                  TransferTime(bytes, config_.registry_bandwidth_bytes_per_sec));
  registry_slots_.Release();
  ++registry_transfers_;
  registry_bytes_ += bytes;
}

fwsim::Co<void> ClusterFabric::RegistryRpc() {
  co_await fwsim::Delay(sim_, config_.registry_rpc_latency);
}

fwsim::Co<void> ClusterFabric::PeerTransfer(uint64_t bytes) {
  co_await fwsim::Delay(sim_, config_.peer_rpc_latency +
                                  TransferTime(bytes, config_.peer_bandwidth_bytes_per_sec));
  ++peer_transfers_;
  peer_bytes_ += bytes;
}

}  // namespace fwnet
