// IPv4 / MAC address value types for the network substrate.
#ifndef FIREWORKS_SRC_NET_ADDR_H_
#define FIREWORKS_SRC_NET_ADDR_H_

#include <compare>
#include <cstdint>
#include <string>

namespace fwnet {

class IpAddr {
 public:
  constexpr IpAddr() : v_(0) {}
  constexpr explicit IpAddr(uint32_t v) : v_(v) {}
  static constexpr IpAddr FromOctets(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
    return IpAddr((uint32_t{a} << 24) | (uint32_t{b} << 16) | (uint32_t{c} << 8) | d);
  }

  constexpr uint32_t value() const { return v_; }
  constexpr bool is_zero() const { return v_ == 0; }
  std::string ToString() const;

  constexpr auto operator<=>(const IpAddr&) const = default;

 private:
  uint32_t v_;
};

class MacAddr {
 public:
  constexpr MacAddr() : v_(0) {}
  constexpr explicit MacAddr(uint64_t v) : v_(v & 0xFFFFFFFFFFFFULL) {}

  constexpr uint64_t value() const { return v_; }
  std::string ToString() const;

  constexpr auto operator<=>(const MacAddr&) const = default;

 private:
  uint64_t v_;
};

}  // namespace fwnet

#endif  // FIREWORKS_SRC_NET_ADDR_H_
