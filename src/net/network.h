// Host networking: namespaces, NAT tables, tap devices (§3.5, Fig 5).
//
// Every microVM resumed from the same snapshot has the *same* guest IP, MAC
// and tap-device name baked into its memory image. Fireworks gives each clone
// its own network namespace with a one-to-one NAT (external B.B.B.B ↔ guest
// A.A.A.A), so identical guest identities never collide. This module provides
// exactly that machinery plus conflict detection: attaching two devices with
// the same name or guest IP to one namespace is an error — the failure mode
// the namespaces exist to prevent, and one our tests exercise.
#ifndef FIREWORKS_SRC_NET_NETWORK_H_
#define FIREWORKS_SRC_NET_NETWORK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/net/addr.h"
#include "src/simcore/simulation.h"

namespace fwfault {
class FaultInjector;
}  // namespace fwfault

namespace fwnet {

using fwbase::Duration;
using fwbase::Result;
using fwbase::Status;

struct TapDevice {
  std::string name;  // e.g. "tap0" — identical across snapshot clones.
  IpAddr guest_ip;   // A.A.A.A, also identical across clones.
  MacAddr mac;
};

struct NatRule {
  IpAddr external;  // B.B.B.B
  IpAddr internal;  // A.A.A.A
};

class NetworkNamespace {
 public:
  explicit NetworkNamespace(uint64_t id) : id_(id) {}

  uint64_t id() const { return id_; }

  // Attaches a tap device. Fails if a device with the same name or the same
  // guest IP already exists *in this namespace*.
  Status AttachTap(const TapDevice& tap);
  Status DetachTap(const std::string& name);
  bool HasTap(const std::string& name) const;
  const std::vector<TapDevice>& taps() const { return taps_; }

  // Installs a DNAT/SNAT pair (iptables). Fails on duplicate external IP.
  Status AddNatRule(const NatRule& rule);

  // DNAT: destination rewrite for an inbound packet to `external`.
  Result<IpAddr> TranslateInbound(IpAddr external) const;
  // SNAT: source rewrite for an outbound packet from `internal`.
  Result<IpAddr> TranslateOutbound(IpAddr internal) const;

  size_t nat_rule_count() const { return nat_rules_.size(); }

 private:
  uint64_t id_;
  std::vector<TapDevice> taps_;
  std::vector<NatRule> nat_rules_;
};

// HostNetwork ties namespaces together: it allocates external IPs, routes
// inbound traffic to the owning namespace, and charges wire + NAT latency.
class HostNetwork {
 public:
  struct Config {
    Duration wire_latency = Duration::Micros(60);  // Host-local hop (bridge).
    Duration nat_cost = Duration::Micros(8);       // iptables translation.
    Duration tap_cost = Duration::Micros(10);      // tap read/write + vhost kick.
    double bandwidth_bytes_per_sec = 10.0e9 / 8.0; // 10 GbE.
  };

  explicit HostNetwork(fwsim::Simulation& sim);
  HostNetwork(fwsim::Simulation& sim, const Config& config);

  // Optional: link-loss faults in Deliver/Send (packet charged, then lost)
  // and NAT port exhaustion in BindExternalIp.
  void set_fault_injector(fwfault::FaultInjector* injector) { injector_ = injector; }

  // Allocates the next unused external IP (from 10.200.0.0/16).
  IpAddr AllocateExternalIp();

  // Creates a fresh namespace owned by the host network.
  NetworkNamespace& CreateNamespace();
  // The default (root) namespace sandboxes without per-VM namespaces live in.
  NetworkNamespace& root_namespace() { return *namespaces_.front(); }
  Status DestroyNamespace(uint64_t id);

  // Binds an external IP to a namespace (packets to `external` are handed to
  // that namespace's NAT table).
  Status BindExternalIp(IpAddr external, uint64_t namespace_id);

  // Delivers `bytes` to external IP `dst`: wire + NAT + tap latency. Returns
  // the guest IP the payload was delivered to.
  fwsim::Co<Result<IpAddr>> DeliverInbound(IpAddr dst, uint64_t bytes);
  // Sends `bytes` out of a namespace from guest IP `src`; returns the
  // externally visible source IP after SNAT.
  fwsim::Co<Result<IpAddr>> SendOutbound(uint64_t namespace_id, IpAddr src, uint64_t bytes);

  Duration TransferTime(uint64_t bytes) const;

  uint64_t packets_delivered() const { return packets_delivered_; }
  uint64_t packets_sent() const { return packets_sent_; }
  uint64_t nat_translations() const { return nat_translations_; }
  size_t namespace_count() const { return namespaces_.size(); }

 private:
  NetworkNamespace* FindNamespace(uint64_t id);

  fwsim::Simulation& sim_;
  Config config_;
  std::vector<std::unique_ptr<NetworkNamespace>> namespaces_;
  std::map<IpAddr, uint64_t> external_bindings_;
  uint64_t next_namespace_id_ = 0;
  uint32_t next_external_ip_ = 0;
  uint64_t packets_delivered_ = 0;
  uint64_t packets_sent_ = 0;
  uint64_t nat_translations_ = 0;
  fwfault::FaultInjector* injector_ = nullptr;
};

}  // namespace fwnet

#endif  // FIREWORKS_SRC_NET_NETWORK_H_
