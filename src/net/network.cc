#include "src/net/network.h"

#include <utility>

#include "src/base/check.h"
#include "src/fault/fault.h"

namespace fwnet {

Status NetworkNamespace::AttachTap(const TapDevice& tap) {
  for (const auto& existing : taps_) {
    if (existing.name == tap.name) {
      return Status::AlreadyExists("tap device " + tap.name + " already exists in namespace");
    }
    if (existing.guest_ip == tap.guest_ip) {
      return Status::AlreadyExists("guest IP " + tap.guest_ip.ToString() +
                                   " conflicts within namespace");
    }
  }
  taps_.push_back(tap);
  return Status::Ok();
}

Status NetworkNamespace::DetachTap(const std::string& name) {
  for (auto it = taps_.begin(); it != taps_.end(); ++it) {
    if (it->name == name) {
      taps_.erase(it);
      return Status::Ok();
    }
  }
  return Status::NotFound("no tap device " + name);
}

bool NetworkNamespace::HasTap(const std::string& name) const {
  for (const auto& tap : taps_) {
    if (tap.name == name) {
      return true;
    }
  }
  return false;
}

Status NetworkNamespace::AddNatRule(const NatRule& rule) {
  for (const auto& existing : nat_rules_) {
    if (existing.external == rule.external) {
      return Status::AlreadyExists("NAT rule for " + rule.external.ToString() +
                                   " already installed");
    }
  }
  nat_rules_.push_back(rule);
  return Status::Ok();
}

Result<IpAddr> NetworkNamespace::TranslateInbound(IpAddr external) const {
  for (const auto& rule : nat_rules_) {
    if (rule.external == external) {
      return rule.internal;
    }
  }
  return Status::NotFound("no DNAT rule for " + external.ToString());
}

Result<IpAddr> NetworkNamespace::TranslateOutbound(IpAddr internal) const {
  for (const auto& rule : nat_rules_) {
    if (rule.internal == internal) {
      return rule.external;
    }
  }
  return Status::NotFound("no SNAT rule for " + internal.ToString());
}

HostNetwork::HostNetwork(fwsim::Simulation& sim) : HostNetwork(sim, Config()) {}

HostNetwork::HostNetwork(fwsim::Simulation& sim, const Config& config)
    : sim_(sim), config_(config) {
  // Namespace 0 is the root namespace.
  namespaces_.push_back(std::make_unique<NetworkNamespace>(next_namespace_id_++));
}

IpAddr HostNetwork::AllocateExternalIp() {
  ++next_external_ip_;
  FW_CHECK_MSG(next_external_ip_ < (1u << 16), "external IP pool exhausted");
  return IpAddr::FromOctets(10, 200, static_cast<uint8_t>(next_external_ip_ >> 8),
                            static_cast<uint8_t>(next_external_ip_ & 0xFF));
}

NetworkNamespace& HostNetwork::CreateNamespace() {
  namespaces_.push_back(std::make_unique<NetworkNamespace>(next_namespace_id_++));
  return *namespaces_.back();
}

NetworkNamespace* HostNetwork::FindNamespace(uint64_t id) {
  for (auto& ns : namespaces_) {
    if (ns->id() == id) {
      return ns.get();
    }
  }
  return nullptr;
}

Status HostNetwork::DestroyNamespace(uint64_t id) {
  FW_CHECK_MSG(id != 0, "cannot destroy the root namespace");
  for (auto it = namespaces_.begin(); it != namespaces_.end(); ++it) {
    if ((*it)->id() == id) {
      // Drop external bindings pointing at this namespace.
      for (auto b = external_bindings_.begin(); b != external_bindings_.end();) {
        if (b->second == id) {
          b = external_bindings_.erase(b);
        } else {
          ++b;
        }
      }
      namespaces_.erase(it);
      return Status::Ok();
    }
  }
  return Status::NotFound("no such namespace");
}

Status HostNetwork::BindExternalIp(IpAddr external, uint64_t namespace_id) {
  if (injector_ != nullptr && injector_->Trip(fwfault::FaultKind::kNetNatExhausted)) {
    return Status::ResourceExhausted("NAT port allocation failed for " + external.ToString());
  }
  if (external_bindings_.count(external) != 0) {
    return Status::AlreadyExists("external IP " + external.ToString() + " already bound");
  }
  if (FindNamespace(namespace_id) == nullptr) {
    return Status::NotFound("no such namespace");
  }
  external_bindings_.emplace(external, namespace_id);
  return Status::Ok();
}

Duration HostNetwork::TransferTime(uint64_t bytes) const {
  return Duration::SecondsF(static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec);
}

fwsim::Co<Result<IpAddr>> HostNetwork::DeliverInbound(IpAddr dst, uint64_t bytes) {
  co_await fwsim::Delay(sim_, config_.wire_latency + TransferTime(bytes));
  if (injector_ != nullptr && injector_->Trip(fwfault::FaultKind::kNetLinkLoss)) {
    co_return Status::Unavailable("packet to " + dst.ToString() + " lost on the wire");
  }
  auto binding = external_bindings_.find(dst);
  if (binding == external_bindings_.end()) {
    co_return Status::NotFound("no route to " + dst.ToString());
  }
  NetworkNamespace* ns = FindNamespace(binding->second);
  FW_CHECK(ns != nullptr);
  Result<IpAddr> internal = ns->TranslateInbound(dst);
  if (!internal.ok()) {
    co_return internal.status();
  }
  ++nat_translations_;
  co_await fwsim::Delay(sim_, config_.nat_cost + config_.tap_cost);
  ++packets_delivered_;
  co_return *internal;
}

fwsim::Co<Result<IpAddr>> HostNetwork::SendOutbound(uint64_t namespace_id, IpAddr src,
                                                    uint64_t bytes) {
  NetworkNamespace* ns = FindNamespace(namespace_id);
  if (ns == nullptr) {
    co_return Status::NotFound("no such namespace");
  }
  co_await fwsim::Delay(sim_, config_.tap_cost);
  if (injector_ != nullptr && injector_->Trip(fwfault::FaultKind::kNetLinkLoss)) {
    co_return Status::Unavailable("packet from " + src.ToString() + " lost on the wire");
  }
  Result<IpAddr> external = ns->TranslateOutbound(src);
  if (!external.ok()) {
    co_return external.status();
  }
  ++nat_translations_;
  co_await fwsim::Delay(sim_, config_.nat_cost + config_.wire_latency + TransferTime(bytes));
  ++packets_sent_;
  co_return *external;
}

}  // namespace fwnet
