#include "src/lang/source_text.h"

#include <cmath>

#include "src/base/strings.h"
#include "src/base/units.h"
#include "src/lang/json.h"

namespace fwlang {

using fwbase::Result;
using fwbase::Status;
using fwbase::StrFormat;

namespace {

Status FieldError(const std::string& context, const std::string& reason) {
  return Status::InvalidArgument(context + ": " + reason);
}

Result<uint64_t> AsCount(const JsonValue& value, const std::string& context) {
  if (!value.is_number()) {
    return FieldError(context, "expected a number");
  }
  const double d = value.AsNumber();
  if (d < 0 || d != std::floor(d)) {
    return FieldError(context, "expected a non-negative integer");
  }
  return static_cast<uint64_t>(d);
}

Result<Op> ParseOp(const JsonValue& json, const std::string& context) {
  if (!json.is_array() || json.AsArray().empty() || !json.AsArray()[0].is_string()) {
    return FieldError(context, "an op must be [\"kind\", args...]");
  }
  const auto& array = json.AsArray();
  const std::string& kind = array[0].AsString();
  const size_t argc = array.size() - 1;

  auto count_arg = [&](size_t i) { return AsCount(array[i], context); };

  if (kind == "compute") {
    if (argc < 1 || argc > 2) {
      return FieldError(context, "compute takes [units, friendliness?]");
    }
    auto units = count_arg(1);
    if (!units.ok()) {
      return units.status();
    }
    double friendliness = 0.95;
    if (argc == 2) {
      if (!array[2].is_number() || array[2].AsNumber() < 0.0 || array[2].AsNumber() > 1.0) {
        return FieldError(context, "friendliness must be a number in [0,1]");
      }
      friendliness = array[2].AsNumber();
    }
    return Op::Compute(*units, friendliness);
  }
  if (kind == "disk_read" || kind == "disk_write") {
    if (argc < 1 || argc > 2) {
      return FieldError(context, kind + " takes [bytes, times?]");
    }
    auto bytes = count_arg(1);
    if (!bytes.ok()) {
      return bytes.status();
    }
    uint64_t times = 1;
    if (argc == 2) {
      auto t = count_arg(2);
      if (!t.ok()) {
        return t.status();
      }
      times = *t;
    }
    return kind == "disk_read" ? Op::DiskRead(*bytes, times) : Op::DiskWrite(*bytes, times);
  }
  if (kind == "net_send") {
    if (argc != 1) {
      return FieldError(context, "net_send takes [bytes]");
    }
    auto bytes = count_arg(1);
    if (!bytes.ok()) {
      return bytes.status();
    }
    return Op::NetSend(*bytes);
  }
  if (kind == "db_put") {
    if (argc != 2 || !array[1].is_string()) {
      return FieldError(context, "db_put takes [db, bytes]");
    }
    auto bytes = count_arg(2);
    if (!bytes.ok()) {
      return bytes.status();
    }
    return Op::DbPut(array[1].AsString(), *bytes);
  }
  if (kind == "db_get") {
    if (argc != 2 || !array[1].is_string() || !array[2].is_string()) {
      return FieldError(context, "db_get takes [db, key]");
    }
    return Op::DbGet(array[1].AsString(), array[2].AsString());
  }
  if (kind == "db_scan") {
    if (argc != 1 || !array[1].is_string()) {
      return FieldError(context, "db_scan takes [db]");
    }
    return Op::DbScan(array[1].AsString());
  }
  if (kind == "call") {
    if (argc < 1 || argc > 2 || !array[1].is_string()) {
      return FieldError(context, "call takes [method, times?]");
    }
    uint64_t times = 1;
    if (argc == 2) {
      auto t = count_arg(2);
      if (!t.ok()) {
        return t.status();
      }
      times = *t;
    }
    return Op::Call(array[1].AsString(), times);
  }
  if (kind == "alloc_heap") {
    if (argc != 1) {
      return FieldError(context, "alloc_heap takes [bytes]");
    }
    auto bytes = count_arg(1);
    if (!bytes.ok()) {
      return bytes.status();
    }
    return Op::AllocHeap(*bytes);
  }
  return FieldError(context, "unknown op kind \"" + kind + "\"");
}

}  // namespace

Result<FunctionSource> ParseFunctionSource(std::string_view json_text) {
  Result<JsonValue> document = ParseJson(json_text);
  if (!document.ok()) {
    return document.status();
  }
  if (!document->is_object()) {
    return Status::InvalidArgument("function definition must be a JSON object");
  }

  const JsonValue* name = document->Find("name");
  if (name == nullptr || !name->is_string() || name->AsString().empty()) {
    return Status::InvalidArgument("missing or invalid \"name\"");
  }
  const JsonValue* language_field = document->Find("language");
  if (language_field == nullptr || !language_field->is_string()) {
    return Status::InvalidArgument("missing or invalid \"language\"");
  }
  Language language;
  if (language_field->AsString() == "nodejs") {
    language = Language::kNodeJs;
  } else if (language_field->AsString() == "python") {
    language = Language::kPython;
  } else {
    return Status::InvalidArgument("\"language\" must be \"nodejs\" or \"python\"");
  }
  const JsonValue* entry = document->Find("entry");
  if (entry == nullptr || !entry->is_string()) {
    return Status::InvalidArgument("missing or invalid \"entry\"");
  }

  uint64_t package_bytes = 0;
  if (const JsonValue* package = document->Find("package_kib"); package != nullptr) {
    auto kib = AsCount(*package, "package_kib");
    if (!kib.ok()) {
      return kib.status();
    }
    package_bytes = *kib * fwbase::kKiB;
  }

  const JsonValue* methods_field = document->Find("methods");
  if (methods_field == nullptr || !methods_field->is_array() ||
      methods_field->AsArray().empty()) {
    return Status::InvalidArgument("\"methods\" must be a non-empty array");
  }

  std::vector<MethodDef> methods;
  for (const JsonValue& method_json : methods_field->AsArray()) {
    if (!method_json.is_object()) {
      return Status::InvalidArgument("each method must be an object");
    }
    const JsonValue* method_name = method_json.Find("name");
    if (method_name == nullptr || !method_name->is_string()) {
      return Status::InvalidArgument("method missing \"name\"");
    }
    const std::string context = "method \"" + method_name->AsString() + "\"";
    for (const auto& existing : methods) {
      if (existing.name == method_name->AsString()) {
        return FieldError(context, "duplicate method name");
      }
    }
    uint64_t code_bytes = 2 * fwbase::kKiB;
    if (const JsonValue* code = method_json.Find("code_kib"); code != nullptr) {
      auto kib = AsCount(*code, context + ".code_kib");
      if (!kib.ok()) {
        return kib.status();
      }
      if (*kib == 0) {
        return FieldError(context, "code_kib must be positive");
      }
      code_bytes = *kib * fwbase::kKiB;
    }
    const JsonValue* ops_field = method_json.Find("ops");
    if (ops_field == nullptr || !ops_field->is_array()) {
      return FieldError(context, "\"ops\" must be an array");
    }
    std::vector<Op> ops;
    for (const JsonValue& op_json : ops_field->AsArray()) {
      Result<Op> op = ParseOp(op_json, context);
      if (!op.ok()) {
        return op.status();
      }
      ops.push_back(*std::move(op));
    }
    methods.emplace_back(method_name->AsString(), std::move(ops), code_bytes);
  }

  FunctionSource fn(name->AsString(), language, std::move(methods), entry->AsString(),
                    package_bytes);
  if (!fn.HasMethod(fn.entry_method)) {
    return Status::InvalidArgument("\"entry\" method \"" + fn.entry_method +
                                   "\" is not defined");
  }
  // Calls must resolve.
  for (const auto& method : fn.methods) {
    for (const auto& op : method.ops) {
      if (op.kind == OpKind::kCall && !fn.HasMethod(op.target)) {
        return FieldError("method \"" + method.name + "\"",
                          "calls undefined method \"" + op.target + "\"");
      }
    }
  }
  return fn;
}

std::string FunctionSourceToJson(const FunctionSource& fn) {
  JsonValue::Array methods;
  for (const auto& method : fn.methods) {
    if (method.injected) {
      continue;  // Annotator artifacts are not part of the user source.
    }
    JsonValue::Array ops;
    for (const auto& op : method.ops) {
      JsonValue::Array tuple;
      tuple.emplace_back(std::string(OpKindName(op.kind)));
      switch (op.kind) {
        case OpKind::kCompute:
          tuple.emplace_back(static_cast<double>(op.amount));
          tuple.emplace_back(op.friendliness);
          break;
        case OpKind::kDiskRead:
        case OpKind::kDiskWrite:
          tuple.emplace_back(static_cast<double>(op.amount));
          tuple.emplace_back(static_cast<double>(op.repeat));
          break;
        case OpKind::kNetSend:
        case OpKind::kAllocHeap:
          tuple.emplace_back(static_cast<double>(op.amount));
          break;
        case OpKind::kDbPut:
          tuple.emplace_back(op.target);
          tuple.emplace_back(static_cast<double>(op.amount));
          break;
        case OpKind::kDbGet: {
          const auto parts = fwbase::StrSplit(op.target, '/');
          tuple.emplace_back(parts[0]);
          tuple.emplace_back(parts.size() > 1 ? parts[1] : "");
          break;
        }
        case OpKind::kDbScan:
          tuple.emplace_back(op.target);
          break;
        case OpKind::kCall:
          tuple.emplace_back(op.target);
          tuple.emplace_back(static_cast<double>(op.repeat));
          break;
      }
      ops.emplace_back(std::move(tuple));
    }
    JsonValue::Object method_json;
    method_json.emplace("name", JsonValue(method.name));
    // Round up: sub-KiB methods must not serialize as zero.
    method_json.emplace(
        "code_kib", JsonValue(static_cast<double>((method.code_bytes + fwbase::kKiB - 1) /
                                                  fwbase::kKiB)));
    method_json.emplace("ops", JsonValue(std::move(ops)));
    methods.emplace_back(std::move(method_json));
  }

  JsonValue::Object root;
  root.emplace("name", JsonValue(fn.name));
  root.emplace("language", JsonValue(std::string(LanguageName(fn.language))));
  root.emplace("entry", JsonValue(fn.entry_method));
  root.emplace("package_kib", JsonValue(static_cast<double>(fn.package_bytes / fwbase::kKiB)));
  root.emplace("methods", JsonValue(std::move(methods)));
  return JsonToString(JsonValue(std::move(root)));
}

}  // namespace fwlang
