#include "src/lang/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "src/base/strings.h"

namespace fwlang {

using fwbase::Result;
using fwbase::Status;
using fwbase::StrFormat;

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) {
    return nullptr;
  }
  const auto& object = AsObject();
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    Result<JsonValue> value = ParseValue();
    if (!value.ok()) {
      return value;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& reason) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_, reason.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      Result<std::string> s = ParseString();
      if (!s.ok()) {
        return s.status();
      }
      return JsonValue(*std::move(s));
    }
    if (c == 't' && ConsumeLiteral("true")) {
      return JsonValue(true);
    }
    if (c == 'f' && ConsumeLiteral("false")) {
      return JsonValue(false);
    }
    if (c == 'n' && ConsumeLiteral("null")) {
      return JsonValue(nullptr);
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      return ParseNumber();
    }
    return Error(StrFormat("unexpected character '%c'", c));
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue::Object object;
    SkipWhitespace();
    if (Consume('}')) {
      return JsonValue(std::move(object));
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected string key");
      }
      Result<std::string> key = ParseString();
      if (!key.ok()) {
        return key.status();
      }
      if (!Consume(':')) {
        return Error("expected ':' after key");
      }
      Result<JsonValue> value = ParseValue();
      if (!value.ok()) {
        return value;
      }
      if (object.count(*key) != 0) {
        return Error("duplicate key \"" + *key + "\"");
      }
      object.emplace(*std::move(key), *std::move(value));
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return JsonValue(std::move(object));
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue::Array array;
    SkipWhitespace();
    if (Consume(']')) {
      return JsonValue(std::move(array));
    }
    for (;;) {
      Result<JsonValue> value = ParseValue();
      if (!value.ok()) {
        return value;
      }
      array.push_back(*std::move(value));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return JsonValue(std::move(array));
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      return Error("truncated \\u escape");
    }
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<uint32_t>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<uint32_t>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<uint32_t>(h - 'A' + 10);
      } else {
        return Error(StrFormat("bad hex digit '%c' in \\u escape", h));
      }
    }
    return code;
  }

  static void AppendUtf8(std::string& out, uint32_t code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          break;
        }
        const char escaped = text_[pos_++];
        switch (escaped) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            // \uXXXX, decoded to UTF-8. Surrogate pairs combine; an unpaired
            // surrogate is replaced with U+FFFD rather than rejected, matching
            // the exporters, which emit \u00XX for bytes that were never valid
            // UTF-8 to begin with.
            auto cp = ParseHex4();
            if (!cp.ok()) {
              return cp.status();
            }
            uint32_t code = *cp;
            if (code >= 0xD800 && code <= 0xDBFF && pos_ + 1 < text_.size() &&
                text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
              pos_ += 2;
              auto lo = ParseHex4();
              if (!lo.ok()) {
                return lo.status();
              }
              if (*lo >= 0xDC00 && *lo <= 0xDFFF) {
                code = 0x10000 + ((code - 0xD800) << 10) + (*lo - 0xDC00);
              } else {
                code = 0xFFFD;
              }
            } else if (code >= 0xD800 && code <= 0xDFFF) {
              code = 0xFFFD;
            }
            AppendUtf8(out, code);
            break;
          }
          default:
            return Status::InvalidArgument(
                StrFormat("JSON parse error at offset %zu: unsupported escape '\\%c'", pos_ - 1,
                          escaped));
        }
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Error("malformed number \"" + token + "\"");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void Append(const JsonValue& value, std::string& out) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.AsBool() ? "true" : "false";
  } else if (value.is_number()) {
    const double d = value.AsNumber();
    if (d == std::floor(d) && std::abs(d) < 1e15) {
      out += StrFormat("%lld", static_cast<long long>(d));
    } else {
      out += StrFormat("%.12g", d);
    }
  } else if (value.is_string()) {
    out += JsonQuote(value.AsString());
  } else if (value.is_array()) {
    out.push_back('[');
    const auto& array = value.AsArray();
    for (size_t i = 0; i < array.size(); ++i) {
      if (i != 0) {
        out.push_back(',');
      }
      Append(array[i], out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [key, field] : value.AsObject()) {
      if (!first) {
        out.push_back(',');
      }
      first = false;
      out += JsonQuote(key);
      out.push_back(':');
      Append(field, out);
    }
    out.push_back('}');
  }
}

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) { return Parser(text).ParseDocument(); }

std::string JsonToString(const JsonValue& value) {
  std::string out;
  Append(value, out);
  return out;
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace fwlang
