// GuestProcess: one language-runtime instance executing a serverless function
// inside a sandbox.
//
// The process owns the runtime-managed segments of its sandbox's address
// space (runtime text/heap, bytecode, JIT code cache, app heap), tracks
// per-method JIT state (tier, specialised type signature, invocation counts),
// and converts operations of the function IR into simulated time and page
// accesses. Sandboxes are single-vCPU (§1: JIT compilation competes with
// execution), so everything — including JIT compilation stalls — is serial.
//
// Snapshot flow: the platform snapshots the sandbox after RunMethod(
// "__fireworks_jit"); resumed clones call CloneFor() to attach an identical
// process state (JITted methods included) to the clone's address space.
#ifndef FIREWORKS_SRC_LANG_GUEST_PROCESS_H_
#define FIREWORKS_SRC_LANG_GUEST_PROCESS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <type_traits>

#include "src/base/status.h"
#include "src/lang/function_ir.h"
#include "src/lang/runtime_model.h"
#include "src/mem/address_space.h"
#include "src/simcore/simulation.h"
#include "src/storage/document_db.h"
#include "src/storage/filesystem.h"

namespace fwlang {

enum class ExecTier { kInterpreter, kJit };

// Where the process's I/O lands. `net_send` is provided by the platform and
// performs the sandbox's egress (NAT etc. included).
struct ExecEnv {
  ExecEnv() = default;
  ExecEnv(fwstore::Filesystem* fs, fwstore::DocumentDb* db,
          std::function<fwsim::Co<void>(uint64_t)> net_send, Duration db_network_rtt)
      : fs(fs), db(db), net_send(std::move(net_send)), db_network_rtt(db_network_rtt) {}

  fwstore::Filesystem* fs = nullptr;
  fwstore::DocumentDb* db = nullptr;
  std::function<fwsim::Co<void>(uint64_t)> net_send;
  Duration db_network_rtt = Duration::Micros(400);
};
static_assert(!std::is_aggregate_v<ExecEnv>);

struct ExecStats {
  ExecStats() = default;

  Duration total;             // Wall time of the call.
  Duration compute_time;      // Interpreter/JIT execution of compute units.
  Duration io_time;           // Disk + network + DB time.
  Duration jit_compile_time;  // Compilation stalls (on the single vCPU).
  Duration fault_time;        // Page-fault service time.
  uint64_t jit_compiles = 0;
  uint64_t deopts = 0;
  uint64_t methods_executed = 0;

  // Guest-identity probes of the outermost call (DESIGN.md §15): the request
  // id the guest minted for it, its first RNG draw, and the guest-monotonic
  // timestamp at entry. Deliberately excluded from operator+= — they are
  // observables of one invocation, not accumulators — so platform results
  // carry them through verbatim. Two clones resumed from one snapshot emit
  // identical values here unless a generation change reseeded them first.
  uint64_t request_id = 0;
  uint64_t first_random = 0;
  int64_t guest_monotonic_ns = 0;

  ExecStats& operator+=(const ExecStats& o);
};
static_assert(!std::is_aggregate_v<ExecStats>);

class GuestProcess {
 public:
  // Converts fault counts into service time (supplied by the sandbox layer:
  // hypervisor for microVMs, container engine for containers).
  using FaultCharger = std::function<Duration(const fwmem::FaultCounts&)>;

  GuestProcess(fwsim::Simulation& sim, Language language, fwmem::AddressSpace& space,
               ExecEnv env, FaultCharger fault_charger, double compute_scale = 1.0);

  // --- Deployment-time -----------------------------------------------------

  // npm / pip install of the function's dependency payload.
  fwsim::Co<void> InstallPackages(const FunctionSource& fn);

  // --- Boot-time -----------------------------------------------------------

  // Launches the runtime. On a fresh sandbox this dirties private pages; on a
  // sandbox whose base image already contains the runtime, text is shared.
  fwsim::Co<void> BootRuntime();

  // Attaches to an already-running runtime process (the V8:Isolate model of
  // Cloudflare Workers, §2.3): no runtime boot, just lightweight isolate
  // context creation. The sandbox's base image must contain the runtime text.
  fwsim::Co<void> AttachRuntime();

  // Parses and loads the function (requires BootRuntime). Allocates bytecode.
  fwsim::Co<void> LoadApplication(const FunctionSource& fn);

  // --- Invocation-time -----------------------------------------------------

  // Executes `method_name` with arguments of type signature `type_sig`.
  // Profile counters advance; JIT tiering, annotation-forced compiles and
  // de-optimisations happen as the runtime model dictates.
  fwsim::Co<ExecStats> CallMethod(const std::string& method_name, const std::string& type_sig);

  // --- Snapshot support ----------------------------------------------------

  // A value snapshot of the process's runtime state (loaded app, JIT tiers,
  // compiled signatures). Captured at snapshot time; outlives the process and
  // its sandbox. The referenced FunctionSource must outlive the state.
  class State;

  // Captures the current runtime state for later FromState() restores.
  State ExtractState() const;

  // Creates a process attached to `clone_space` (an address space restored
  // from a snapshot of the sandbox `state` was extracted in) with identical
  // runtime state. Numba's per-module code duplication dirties part of the
  // clone's JIT pages on first execution.
  static std::unique_ptr<GuestProcess> FromState(const State& state, fwsim::Simulation& sim,
                                                 fwmem::AddressSpace& clone_space, ExecEnv env,
                                                 FaultCharger fault_charger,
                                                 double compute_scale = 1.0);

  // Convenience wrapper: ExtractState + FromState with this process's env.
  std::unique_ptr<GuestProcess> CloneFor(fwmem::AddressSpace& clone_space,
                                         FaultCharger fault_charger) const;

  // --- Guest identity (DESIGN.md §15) --------------------------------------
  //
  // The runtime's RNG, monotonic clock and request-id counter are ordinary
  // guest state: seeded at boot, mutated by execution, captured into
  // snapshots with everything else — and therefore duplicated byte-for-byte
  // across clones until a generation change reseeds them.

  // Boot-time entropy for the guest RNG (one virtio-rng read at runtime
  // start). Set by the platform before BootRuntime/AttachRuntime; the
  // default keeps sandboxes without a modeled entropy source deterministic.
  void set_boot_entropy(uint64_t entropy) { boot_entropy_ = entropy; }

  // Next value of the guest RNG stream: xoshiro256** over the identity
  // record, so the stream position itself is snapshot state.
  uint64_t GuestRandomU64();

  // Mints a "unique" request id: the serial counter mixed with an RNG draw.
  // Both halves live in the identity record, so clones collide on it.
  uint64_t NextRequestId();

  // Guest CLOCK_MONOTONIC in nanoseconds: the snapshot-captured base plus
  // sim time since this process (re)started.
  int64_t GuestMonotonicNanos() const;

  // First half of the vmgenid resume protocol: mix fresh host entropy into
  // the RNG state (charges vmgenid_reseed_cost). Idempotent per generation.
  fwsim::Co<void> ReseedFromHostEntropy(uint64_t generation, uint64_t host_entropy);

  // Second half: rebase the monotonic clock onto the host timeline and
  // acknowledge the generation (charges clock_rebase_cost). Only after this
  // completes is the clone safe to admit to user traffic; a crash in between
  // leaves observed_generation() stale, which admission guards check.
  fwsim::Co<void> RebaseMonotonicClock(uint64_t generation);

  uint64_t observed_generation() const { return identity_.observed_generation; }
  const fwmem::GuestIdentityRecord& identity() const { return identity_; }

  // --- Introspection -------------------------------------------------------

  // Differentiates per-sandbox memory-access patterns (GC dirt subsets) so
  // clones do not dirty byte-identical page sets. Set by the platform layer.
  void set_mem_salt(uint64_t salt) { mem_salt_ = salt; }

  bool runtime_booted() const { return runtime_booted_; }
  bool app_loaded() const { return loaded_fn_ != nullptr; }
  ExecTier TierOf(const std::string& method_name) const;
  uint64_t InvocationCount(const std::string& method_name) const;
  uint64_t jit_code_bytes_used() const { return jit_code_bytes_used_; }
  Language language() const { return language_; }
  const RuntimeCosts& costs() const { return costs_; }

 private:
  struct MethodState {
    ExecTier tier = ExecTier::kInterpreter;
    uint64_t invocations = 0;
    std::string compiled_sig;
    uint64_t compiles = 0;
    // De-optimisations seen so far; after kPolymorphicThreshold distinct
    // signatures the code goes polymorphic (inline caches handle any shape:
    // no further deopts, slightly slower JITted code).
    uint32_t deopts = 0;
    bool polymorphic = false;
    // Location of this method's machine code in the JIT code cache segment.
    uint64_t jit_offset_page = 0;
    uint64_t jit_pages = 0;
  };
  static constexpr uint32_t kPolymorphicThreshold = 2;
  // Speed retained by polymorphic (IC-dispatched) JITted code.
  static constexpr double kPolymorphicDerate = 0.85;
  // Re-optimising for a new signature reuses the compilation artefacts and
  // costs a fraction of the initial compile.
  static constexpr double kReoptCostFraction = 0.15;

  // Seeds the identity record from `entropy` (SplitMix64 expansion, like
  // fwbase::Rng) and anchors the monotonic clock at zero.
  void SeedIdentity(uint64_t entropy);
  // Advances the identity RNG by one xoshiro256** step.
  uint64_t StepIdentityRng();
  // Pushes the identity record into the address space (with the monotonic
  // base materialised at "now") so a snapshot taken at any point captures it.
  void SyncIdentity();

  fwmem::SegmentId EnsureSegment(const char* seg_name, uint64_t bytes);
  fwsim::Co<void> ChargeFaults(const fwmem::FaultCounts& faults, ExecStats& stats);
  // Pays the compile stall for `method` and allocates its machine-code pages.
  // `reoptimize` marks a post-deopt respecialisation (cheaper).
  fwsim::Co<void> JitCompile(const MethodDef& method, MethodState& state,
                             const std::string& type_sig, bool reoptimize, ExecStats& stats);
  fwsim::Co<ExecStats> ExecMethod(const MethodDef& method, const std::string& type_sig,
                                  int depth);
  fwsim::Co<void> ExecOp(const Op& op, ExecTier tier, double jit_derate,
                         const std::string& type_sig, ExecStats& stats, int depth);

  fwsim::Simulation& sim_;
  Language language_;
  RuntimeCosts costs_;
  fwmem::AddressSpace& space_;
  ExecEnv env_;
  FaultCharger fault_charger_;
  double compute_scale_;

  bool runtime_booted_ = false;
  const FunctionSource* loaded_fn_ = nullptr;
  std::map<std::string, MethodState> methods_;
  uint64_t jit_code_bytes_used_ = 0;
  uint64_t bytecode_bytes_used_ = 0;
  // Set on clones: Numba relocation dirt still owed on first execution.
  bool pending_clone_jit_relocation_ = false;
  uint64_t invocation_serial_ = 0;
  uint64_t jit_alloc_cursor_pages_ = 0;
  uint64_t heap_cursor_pages_ = 0;
  uint64_t mem_salt_ = 0;
  // Guest identity (DESIGN.md §15). `resume_anchor_` is the sim time this
  // process instance (re)started; the guest monotonic clock is
  // identity_.monotonic_base_ns + (now - resume_anchor_).
  fwmem::GuestIdentityRecord identity_;
  fwbase::SimTime resume_anchor_;
  uint64_t boot_entropy_ = 0xF19E0B0075EEDULL;
};

class GuestProcess::State {
 public:
  State() = default;

 private:
  friend class GuestProcess;

  Language language = Language::kNodeJs;
  const FunctionSource* loaded_fn = nullptr;
  std::map<std::string, MethodState> methods;
  uint64_t jit_code_bytes_used = 0;
  uint64_t bytecode_bytes_used = 0;
  uint64_t jit_alloc_cursor_pages = 0;
};

}  // namespace fwlang

#endif  // FIREWORKS_SRC_LANG_GUEST_PROCESS_H_
