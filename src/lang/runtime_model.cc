#include "src/lang/runtime_model.h"

#include <climits>

#include "src/base/check.h"

namespace fwlang {

using namespace fwbase::literals;

RuntimeCosts RuntimeCosts::For(Language language) {
  RuntimeCosts c;
  switch (language) {
    case Language::kNodeJs:
      // V8/Node: slower boot, fast interpreter, quick cheap tiering,
      // lean shareable code objects.
      c.runtime_boot_cost = fwbase::Duration::Millis(310);
      c.runtime_text_bytes = 42_MiB;
      c.runtime_boot_heap_bytes = 36_MiB;
      c.per_unit_interp = fwbase::Duration::Nanos(17);
      c.jit_speedup = 9.0;
      c.jit_compile_per_kib = fwbase::Duration::MillisF(2.6);
      c.hotness_threshold = 6;
      c.auto_jit = true;
      c.deopt_cost = fwbase::Duration::Micros(170);
      c.bytecode_bytes_per_code_kib = 3 * 1024;
      c.jit_code_bytes_per_code_kib = 10 * 1024;
      c.jit_code_shareable_fraction = 0.95;
      c.runtime_heap_exec_dirty_fraction = 0.07;
      c.runtime_text_exec_touch_fraction = 0.62;
      c.runtime_heap_exec_touch_fraction = 0.55;
      // crypto.randomFillSync reseed of the pool + CLOCK_MONOTONIC rebase
      // after a vmgenid bump (V8 keeps its entropy pool in the heap).
      c.vmgenid_reseed_cost = fwbase::Duration::Micros(220);
      c.clock_rebase_cost = fwbase::Duration::Micros(50);
      c.app_load_fixed_cost = fwbase::Duration::Millis(130);  // require() resolution.
      c.app_load_cost_per_kib = fwbase::Duration::MillisF(0.55);
      c.package_install_cost_per_mib = fwbase::Duration::Millis(340);  // npm.
      c.app_heap_capacity_bytes = 96_MiB;
      break;
    case Language::kPython:
      // CPython + Numba: fast boot, slow interpreter, no auto-tiering, very
      // expensive LLVM compiles with a huge pay-off, duplicated code objects.
      c.runtime_boot_cost = fwbase::Duration::Millis(95);
      c.runtime_text_bytes = 12_MiB;
      c.runtime_boot_heap_bytes = 13_MiB;
      c.per_unit_interp = fwbase::Duration::Nanos(150);
      c.jit_speedup = 110.0;  // LLVM-compiled numeric kernels vs CPython bytecode.
      c.jit_compile_per_kib = fwbase::Duration::Millis(55);  // Numba → LLVM MCJIT.
      c.hotness_threshold = INT_MAX;
      c.auto_jit = false;
      c.deopt_cost = fwbase::Duration::Micros(320);
      c.bytecode_bytes_per_code_kib = 2 * 1024;
      c.jit_code_bytes_per_code_kib = 1536 * 1024;  // LLVM output + per-module duplication.
      c.jit_code_shareable_fraction = 0.12;
      c.runtime_heap_exec_dirty_fraction = 0.24;
      c.runtime_text_exec_touch_fraction = 0.55;
      c.runtime_heap_exec_touch_fraction = 0.65;
      // os.urandom pool refresh + time.monotonic rebase after a vmgenid bump
      // (CPython's secrets/ssl pools are smaller than V8's).
      c.vmgenid_reseed_cost = fwbase::Duration::Micros(180);
      c.clock_rebase_cost = fwbase::Duration::Micros(40);
      c.app_load_fixed_cost = fwbase::Duration::Millis(45);  // Imports.
      c.app_load_cost_per_kib = fwbase::Duration::MillisF(0.35);
      c.package_install_cost_per_mib = fwbase::Duration::Millis(260);  // pip.
      c.app_heap_capacity_bytes = 96_MiB;
      break;
  }
  FW_CHECK(c.jit_speedup >= 1.0);
  return c;
}

}  // namespace fwlang
