// Function IR: the representation of a serverless function's source code.
//
// The paper's functions are Node.js / Python sources; here a function is a
// set of methods, each a sequence of operations (compute, disk I/O, network,
// document-DB access, calls to other methods). The IR is rich enough for the
// code annotator to perform the Fig. 3 source-to-source transform (insert
// __fireworks_jit / __fireworks_snapshot / __fireworks_main and @jit
// annotations) and for the runtime model to execute it with profile-driven
// JIT compilation.
#ifndef FIREWORKS_SRC_LANG_FUNCTION_IR_H_
#define FIREWORKS_SRC_LANG_FUNCTION_IR_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "src/base/units.h"

namespace fwlang {

enum class Language { kNodeJs, kPython };

const char* LanguageName(Language language);

enum class OpKind {
  kCompute,    // `amount` abstract compute units.
  kDiskRead,   // `amount` bytes per repetition.
  kDiskWrite,
  kNetSend,    // Outbound payload of `amount` bytes (e.g. HTTP response).
  kDbPut,      // Document write of `amount` bytes into database `target`.
  kDbGet,      // Document read by key; `target` = "db/key".
  kDbScan,     // Full scan of database `target`.
  kCall,       // Invoke method `target`, `repeat` times.
  kAllocHeap,  // Dirty `amount` bytes of the application heap.
};

const char* OpKindName(OpKind kind);

struct Op {
  // Factory constructors; Op is deliberately non-aggregate (see the GCC 12
  // note in simcore/coro.h).
  //
  // `friendliness` is the fraction of a compute op the JIT can accelerate
  // (pure numeric loops ≈ 1.0; string/object-heavy code retains interpreter-
  // like behaviour for the remainder). Effective JITted time per unit is
  //   per_unit × (friendliness / jit_speedup + (1 − friendliness)).
  static Op Compute(uint64_t units, double friendliness = 0.95) {
    Op op(OpKind::kCompute, units, 1, {});
    op.friendliness = friendliness;
    return op;
  }
  static Op DiskRead(uint64_t bytes, uint64_t times = 1) {
    return Op(OpKind::kDiskRead, bytes, times, {});
  }
  static Op DiskWrite(uint64_t bytes, uint64_t times = 1) {
    return Op(OpKind::kDiskWrite, bytes, times, {});
  }
  static Op NetSend(uint64_t bytes) { return Op(OpKind::kNetSend, bytes, 1, {}); }
  static Op DbPut(const std::string& db, uint64_t bytes) {
    return Op(OpKind::kDbPut, bytes, 1, db);
  }
  static Op DbGet(const std::string& db, const std::string& key) {
    return Op(OpKind::kDbGet, 0, 1, db + "/" + key);
  }
  static Op DbScan(const std::string& db) { return Op(OpKind::kDbScan, 0, 1, db); }
  static Op Call(const std::string& method, uint64_t times = 1) {
    return Op(OpKind::kCall, 0, times, method);
  }
  static Op AllocHeap(uint64_t bytes) { return Op(OpKind::kAllocHeap, bytes, 1, {}); }

  OpKind kind;
  uint64_t amount;
  uint64_t repeat;
  std::string target;
  double friendliness = 0.95;  // kCompute only.

 private:
  Op(OpKind kind, uint64_t amount, uint64_t repeat, std::string target)
      : kind(kind), amount(amount), repeat(repeat), target(std::move(target)) {}
};
static_assert(!std::is_aggregate_v<Op>);

struct MethodDef {
  MethodDef() = default;
  MethodDef(std::string name, std::vector<Op> ops, uint64_t code_bytes = 2 * fwbase::kKiB)
      : name(std::move(name)), ops(std::move(ops)), code_bytes(code_bytes) {}

  std::string name;
  std::vector<Op> ops;
  // Source size; drives parse/load time, bytecode size, and JIT compile time.
  uint64_t code_bytes = 2 * fwbase::kKiB;
  // Set by the code annotator: @jit(cache=True) for Python Numba, or the
  // force-optimize hint for V8. Annotated methods compile on first call.
  bool jit_annotated = false;
  // Synthetic methods injected by the annotator (not user code).
  bool injected = false;
};
static_assert(!std::is_aggregate_v<MethodDef>);

struct FunctionSource {
  FunctionSource() = default;
  FunctionSource(std::string name, Language language, std::vector<MethodDef> methods,
                 std::string entry_method, uint64_t package_bytes = 0)
      : name(std::move(name)),
        language(language),
        methods(std::move(methods)),
        entry_method(std::move(entry_method)),
        package_bytes(package_bytes) {}

  const MethodDef* FindMethod(const std::string& method_name) const;
  bool HasMethod(const std::string& method_name) const { return FindMethod(method_name) != nullptr; }
  // Sum of code_bytes over all methods.
  uint64_t TotalCodeBytes() const;
  // Names of non-injected methods.
  std::vector<std::string> UserMethodNames() const;

  std::string name;
  Language language = Language::kNodeJs;
  std::vector<MethodDef> methods;
  std::string entry_method;
  // Dependency payload (node_modules / site-packages) installed at deploy.
  uint64_t package_bytes = 0;
  // Set once the Fireworks code annotator has transformed this source.
  bool annotated = false;
};
static_assert(!std::is_aggregate_v<FunctionSource>);

// Names the annotator injects (Fig. 3).
inline constexpr char kFireworksJitMethod[] = "__fireworks_jit";
inline constexpr char kFireworksSnapshotMethod[] = "__fireworks_snapshot";
inline constexpr char kFireworksMainMethod[] = "__fireworks_main";

}  // namespace fwlang

#endif  // FIREWORKS_SRC_LANG_FUNCTION_IR_H_
