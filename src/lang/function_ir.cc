#include "src/lang/function_ir.h"

namespace fwlang {

const char* LanguageName(Language language) {
  switch (language) {
    case Language::kNodeJs:
      return "nodejs";
    case Language::kPython:
      return "python";
  }
  return "?";
}

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kCompute:
      return "compute";
    case OpKind::kDiskRead:
      return "disk_read";
    case OpKind::kDiskWrite:
      return "disk_write";
    case OpKind::kNetSend:
      return "net_send";
    case OpKind::kDbPut:
      return "db_put";
    case OpKind::kDbGet:
      return "db_get";
    case OpKind::kDbScan:
      return "db_scan";
    case OpKind::kCall:
      return "call";
    case OpKind::kAllocHeap:
      return "alloc_heap";
  }
  return "?";
}

const MethodDef* FunctionSource::FindMethod(const std::string& method_name) const {
  for (const auto& m : methods) {
    if (m.name == method_name) {
      return &m;
    }
  }
  return nullptr;
}

uint64_t FunctionSource::TotalCodeBytes() const {
  uint64_t total = 0;
  for (const auto& m : methods) {
    total += m.code_bytes;
  }
  return total;
}

std::vector<std::string> FunctionSource::UserMethodNames() const {
  std::vector<std::string> names;
  for (const auto& m : methods) {
    if (!m.injected) {
      names.push_back(m.name);
    }
  }
  return names;
}

}  // namespace fwlang
