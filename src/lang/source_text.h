// Textual function definitions: parse and serialize FunctionSource as JSON.
//
// A downstream user defines serverless functions as data instead of C++:
//
//   {
//     "name": "faas-fact-nodejs",
//     "language": "nodejs",            // or "python"
//     "entry": "main",
//     "package_kib": 2048,             // optional, default 0
//     "methods": [
//       {"name": "factorize", "code_kib": 2,
//        "ops": [["compute", 300000, 0.97], ["alloc_heap", 458752]]},
//       {"name": "main",
//        "ops": [["call", "factorize", 100], ["net_send", 579]]}
//     ]
//   }
//
// Ops are arrays of [kind, args...]:
//   ["compute", units, friendliness?]        friendliness defaults to 0.95
//   ["disk_read", bytes, times?]             times defaults to 1
//   ["disk_write", bytes, times?]
//   ["net_send", bytes]
//   ["db_put", db, bytes]
//   ["db_get", db, key]
//   ["db_scan", db]
//   ["call", method, times?]
//   ["alloc_heap", bytes]
//
// ParseFunctionSource accepts exactly this shape and reports precise errors;
// FunctionSourceToJson emits it back (round-trip stable for parsed inputs).
#ifndef FIREWORKS_SRC_LANG_SOURCE_TEXT_H_
#define FIREWORKS_SRC_LANG_SOURCE_TEXT_H_

#include <string>
#include <string_view>

#include "src/base/status.h"
#include "src/lang/function_ir.h"

namespace fwlang {

fwbase::Result<FunctionSource> ParseFunctionSource(std::string_view json_text);

std::string FunctionSourceToJson(const FunctionSource& fn);

}  // namespace fwlang

#endif  // FIREWORKS_SRC_LANG_SOURCE_TEXT_H_
