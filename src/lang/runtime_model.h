// Per-language runtime cost and memory models.
//
// Node.js is modelled after V8: a fast-booting-but-heavy runtime whose
// interpreter (Ignition) is reasonably quick, with profile-driven tiering to
// TurboFan once a method's invocation count crosses a hotness threshold.
// JITted code pages are lean and read-mostly ("A lighter V8": lazy allocation
// of execution state), so they share well across snapshot clones (§5.5.2).
//
// Python is modelled after CPython + Numba: a slower interpreter that never
// tiers up on its own; only methods carrying the @jit(cache=True) annotation
// compile — expensively, through LLVM — on first call, with a large speed-up.
// Numba duplicates JITted function code per module (an LLVM MCJIT
// restriction, §5.5.2), so its code pages are big and mostly unshareable
// after a snapshot resume.
#ifndef FIREWORKS_SRC_LANG_RUNTIME_MODEL_H_
#define FIREWORKS_SRC_LANG_RUNTIME_MODEL_H_

#include <cstdint>

#include "src/base/units.h"
#include "src/lang/function_ir.h"

namespace fwlang {

using fwbase::Duration;

struct RuntimeCosts {
  RuntimeCosts() {}

  // Launching the runtime binary up to an idle REPL/event loop.
  Duration runtime_boot_cost;
  uint64_t runtime_text_bytes = 0;       // Binary + stdlib text resident after boot.
  uint64_t runtime_boot_heap_bytes = 0;  // Heap the runtime dirties while booting.

  // Interpreter speed and JIT characteristics.
  Duration per_unit_interp;     // Time per abstract compute unit, interpreted.
  double jit_speedup = 1.0;           // Interp-time / JIT-time for compute units.
  Duration jit_compile_per_kib; // Compile time per KiB of method source.
  int hotness_threshold = 0;        // Invocations before auto-tiering (if auto_jit).
  bool auto_jit = false;                // V8 tiers automatically; CPython does not.
  Duration deopt_cost;          // Falling back to bytecode on a type change.

  // Memory layout factors.
  uint64_t bytecode_bytes_per_code_kib = 0;  // Bytecode per KiB of source.
  uint64_t jit_code_bytes_per_code_kib = 0;  // Machine code per KiB of source.
  // Fraction of JIT-code pages that stay clean (shareable) when a snapshot
  // clone re-executes them. V8 ≈ all; Numba relocates/duplicates on load.
  double jit_code_shareable_fraction = 1.0;
  // Fraction of the boot-time runtime heap dirtied per invocation (GC churn,
  // caches). V8-lite is lazy; CPython refcounting touches more.
  double runtime_heap_exec_dirty_fraction = 0.0;
  // Fractions of runtime text / heap *read* while executing (the working set
  // an invocation makes resident). Reads stay shared on snapshot clones; the
  // dirty fraction above is the part that diverges per clone.
  double runtime_text_exec_touch_fraction = 0.0;
  double runtime_heap_exec_touch_fraction = 0.0;

  // vmgenid resume protocol (DESIGN.md §15): in-guest cost of mixing fresh
  // host entropy into the runtime's PRNG after a generation change, and of
  // rebasing the monotonic clock onto the host timeline. Paid on the restore
  // critical path, before the clone serves traffic.
  Duration vmgenid_reseed_cost;
  Duration clock_rebase_cost;

  // Application load (parse, module resolution, imports).
  Duration app_load_fixed_cost;
  Duration app_load_cost_per_kib;
  // Dependency installation (npm / pip), paid once per deployment.
  Duration package_install_cost_per_mib;

  // Capacity of the application heap segment.
  uint64_t app_heap_capacity_bytes = 0;

  static RuntimeCosts For(Language language);
};

// Guest segment names managed by the runtime layer.
inline constexpr char kSegRuntimeText[] = "runtime_text";
inline constexpr char kSegRuntimeHeap[] = "runtime_heap";
inline constexpr char kSegBytecode[] = "bytecode";
inline constexpr char kSegJitCode[] = "jit_code";
inline constexpr char kSegAppHeap[] = "app_heap";

}  // namespace fwlang

#endif  // FIREWORKS_SRC_LANG_RUNTIME_MODEL_H_
