#include "src/lang/guest_process.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"
#include "src/base/logging.h"
#include "src/base/strings.h"

namespace fwlang {

using fwbase::Duration;
using fwbase::kKiB;
using fwbase::PagesFor;

namespace {

// SplitMix64 / xoshiro256** steps over the identity record's raw state words,
// mirroring fwbase::Rng exactly. Re-implemented here rather than reusing Rng
// because the guest RNG's *state* must live in the GuestIdentityRecord that
// snapshots capture — the stream position is guest memory, not host state.
uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

ExecStats& ExecStats::operator+=(const ExecStats& o) {
  total += o.total;
  compute_time += o.compute_time;
  io_time += o.io_time;
  jit_compile_time += o.jit_compile_time;
  fault_time += o.fault_time;
  jit_compiles += o.jit_compiles;
  deopts += o.deopts;
  methods_executed += o.methods_executed;
  return *this;
}

GuestProcess::GuestProcess(fwsim::Simulation& sim, Language language,
                           fwmem::AddressSpace& space, ExecEnv env, FaultCharger fault_charger,
                           double compute_scale)
    : sim_(sim),
      language_(language),
      costs_(RuntimeCosts::For(language)),
      space_(space),
      env_(std::move(env)),
      fault_charger_(std::move(fault_charger)),
      compute_scale_(compute_scale) {
  FW_CHECK(fault_charger_ != nullptr);
  FW_CHECK(compute_scale_ >= 1.0);
  resume_anchor_ = sim_.Now();
}

// --- Guest identity (DESIGN.md §15) -----------------------------------------

void GuestProcess::SeedIdentity(uint64_t entropy) {
  uint64_t seq = entropy;
  for (uint64_t& s : identity_.rng_state) {
    s = SplitMix64(seq);
  }
  identity_.monotonic_base_ns = 0;
  identity_.next_request_id = 1;
  identity_.valid = true;
  resume_anchor_ = sim_.Now();
  SyncIdentity();
}

uint64_t GuestProcess::StepIdentityRng() {
  uint64_t* s = identity_.rng_state;
  const uint64_t result = Rotl(s[1] * 5, 7) * 9;
  const uint64_t t = s[1] << 17;
  s[2] ^= s[0];
  s[3] ^= s[1];
  s[1] ^= s[2];
  s[0] ^= s[3];
  s[2] ^= t;
  s[3] = Rotl(s[3], 45);
  return result;
}

void GuestProcess::SyncIdentity() {
  fwmem::GuestIdentityRecord record = identity_;
  // Materialise the clock so a snapshot taken after this point captures the
  // guest monotonic reading "as of now"; a clone resumes counting from it.
  record.monotonic_base_ns = GuestMonotonicNanos();
  space_.set_guest_identity(record);
}

uint64_t GuestProcess::GuestRandomU64() {
  const uint64_t value = StepIdentityRng();
  SyncIdentity();
  return value;
}

uint64_t GuestProcess::NextRequestId() {
  const uint64_t serial = identity_.next_request_id++;
  // Serial mixed with an RNG draw — the UUIDv4-ish shape real runtimes use.
  // Both halves are snapshot state, so sibling clones mint identical ids.
  const uint64_t id = StepIdentityRng() ^ (serial * 0x9E3779B97F4A7C15ULL);
  SyncIdentity();
  return id;
}

int64_t GuestProcess::GuestMonotonicNanos() const {
  return identity_.monotonic_base_ns + (sim_.Now() - resume_anchor_).nanos();
}

fwsim::Co<void> GuestProcess::ReseedFromHostEntropy(uint64_t generation, uint64_t host_entropy) {
  if (identity_.valid && generation <= identity_.observed_generation) {
    co_return;  // Duplicate delivery (retried restore): already reseeded.
  }
  co_await fwsim::Delay(sim_, costs_.vmgenid_reseed_cost);
  uint64_t seq = host_entropy ^ (generation * 0x9E3779B97F4A7C15ULL);
  for (uint64_t& s : identity_.rng_state) {
    s ^= SplitMix64(seq);
  }
  identity_.valid = true;
  SyncIdentity();
}

fwsim::Co<void> GuestProcess::RebaseMonotonicClock(uint64_t generation) {
  if (identity_.valid && generation <= identity_.observed_generation) {
    co_return;
  }
  co_await fwsim::Delay(sim_, costs_.clock_rebase_cost);
  // Rebase onto the host timeline: clones reseeded at different host times
  // stop sharing timestamps. Acknowledging the generation is the *last* step,
  // so a crash mid-protocol leaves observed_generation() stale and admission
  // guards keep the half-reseeded clone away from user traffic.
  identity_.monotonic_base_ns = sim_.Now().nanos();
  resume_anchor_ = sim_.Now();
  identity_.observed_generation = generation;
  SyncIdentity();
}

fwmem::SegmentId GuestProcess::EnsureSegment(const char* seg_name, uint64_t bytes) {
  if (space_.HasSegment(seg_name)) {
    return space_.SegmentByName(seg_name);
  }
  return space_.AddSegment(seg_name, bytes);
}

fwsim::Co<void> GuestProcess::ChargeFaults(const fwmem::FaultCounts& faults, ExecStats& stats) {
  const Duration t = fault_charger_(faults);
  stats.fault_time += t;
  co_await fwsim::Delay(sim_, t);
}

fwsim::Co<void> GuestProcess::InstallPackages(const FunctionSource& fn) {
  if (fn.package_bytes == 0) {
    co_return;
  }
  const double mib = static_cast<double>(fn.package_bytes) / static_cast<double>(fwbase::kMiB);
  co_await fwsim::Delay(sim_, costs_.package_install_cost_per_mib * mib);
  if (env_.fs != nullptr) {
    co_await env_.fs->WriteFile(fn.package_bytes);
  }
}

fwsim::Co<void> GuestProcess::BootRuntime() {
  FW_CHECK_MSG(!runtime_booted_, "runtime already booted");
  ExecStats stats;
  const fwmem::SegmentId text = EnsureSegment(kSegRuntimeText, costs_.runtime_text_bytes);
  // Binary text is read: shared when the sandbox has a base image containing
  // it (containers), private fresh content otherwise (cold microVMs).
  fwmem::FaultCounts faults = space_.TouchBytes(text, costs_.runtime_text_bytes);
  co_await fwsim::Delay(sim_, costs_.runtime_boot_cost);
  const fwmem::SegmentId heap = EnsureSegment(kSegRuntimeHeap, costs_.runtime_boot_heap_bytes);
  faults += space_.DirtyBytes(heap, costs_.runtime_boot_heap_bytes);
  co_await ChargeFaults(faults, stats);
  runtime_booted_ = true;
  // The runtime seeds its PRNG once at boot (getrandom at startup): from here
  // on the stream is guest memory, captured by any snapshot.
  SeedIdentity(boot_entropy_);
}

fwsim::Co<void> GuestProcess::AttachRuntime() {
  FW_CHECK_MSG(!runtime_booted_, "runtime already booted");
  ExecStats stats;
  const fwmem::SegmentId text = EnsureSegment(kSegRuntimeText, costs_.runtime_text_bytes);
  fwmem::FaultCounts faults = space_.TouchBytes(text, costs_.runtime_text_bytes);
  // Isolate context creation is measured in hundreds of microseconds.
  co_await fwsim::Delay(sim_, Duration::Micros(900));
  const fwmem::SegmentId heap = EnsureSegment(kSegRuntimeHeap, costs_.runtime_boot_heap_bytes);
  // A fresh isolate only needs a sliver of heap.
  faults += space_.DirtyBytes(heap, 2 * fwbase::kMiB);
  co_await ChargeFaults(faults, stats);
  runtime_booted_ = true;
  SeedIdentity(boot_entropy_);
}

fwsim::Co<void> GuestProcess::LoadApplication(const FunctionSource& fn) {
  FW_CHECK_MSG(runtime_booted_, "LoadApplication requires a booted runtime");
  FW_CHECK_MSG(loaded_fn_ == nullptr, "an application is already loaded");
  ExecStats stats;
  const double code_kib = static_cast<double>(fn.TotalCodeBytes()) / static_cast<double>(kKiB);
  co_await fwsim::Delay(sim_, costs_.app_load_fixed_cost + costs_.app_load_cost_per_kib * code_kib);
  bytecode_bytes_used_ =
      static_cast<uint64_t>(code_kib * static_cast<double>(costs_.bytecode_bytes_per_code_kib));
  const fwmem::SegmentId bytecode =
      EnsureSegment(kSegBytecode, std::max<uint64_t>(bytecode_bytes_used_, fwbase::kPageSize));
  fwmem::FaultCounts faults = space_.DirtyBytes(bytecode, bytecode_bytes_used_);
  EnsureSegment(kSegAppHeap, costs_.app_heap_capacity_bytes);
  co_await ChargeFaults(faults, stats);
  loaded_fn_ = &fn;
}

fwsim::Co<void> GuestProcess::JitCompile(const MethodDef& method, MethodState& state,
                                         const std::string& type_sig, bool reoptimize,
                                         ExecStats& stats) {
  const double code_kib = static_cast<double>(method.code_bytes) / static_cast<double>(kKiB);
  const Duration compile =
      costs_.jit_compile_per_kib * code_kib * (reoptimize ? kReoptCostFraction : 1.0);
  stats.jit_compile_time += compile;
  ++stats.jit_compiles;
  // Single vCPU: the compile stalls execution (§1).
  co_await fwsim::Delay(sim_, compile);

  const uint64_t jit_bytes =
      static_cast<uint64_t>(code_kib * static_cast<double>(costs_.jit_code_bytes_per_code_kib));
  FW_CHECK(loaded_fn_ != nullptr);
  const uint64_t capacity_bytes = std::max<uint64_t>(
      static_cast<uint64_t>(static_cast<double>(loaded_fn_->TotalCodeBytes()) /
                            static_cast<double>(kKiB) *
                            static_cast<double>(costs_.jit_code_bytes_per_code_kib)) *
          2,
      fwbase::kPageSize);
  const fwmem::SegmentId jit_seg = EnsureSegment(kSegJitCode, capacity_bytes);
  if (state.compiles == 0) {
    // First compile of this method: allocate fresh code pages.
    state.jit_offset_page = jit_alloc_cursor_pages_;
    state.jit_pages = PagesFor(jit_bytes);
    FW_CHECK_MSG(state.jit_offset_page + state.jit_pages <= space_.SegmentPages(jit_seg),
                 "JIT code cache exhausted");
    jit_alloc_cursor_pages_ += state.jit_pages;
    jit_code_bytes_used_ += jit_bytes;
  }
  // (Re-)compilation writes the method's code pages.
  fwmem::FaultCounts faults = space_.Dirty(jit_seg, state.jit_offset_page, state.jit_pages);
  co_await ChargeFaults(faults, stats);
  ++state.compiles;
  state.tier = ExecTier::kJit;
  state.compiled_sig = type_sig;
}

fwsim::Co<ExecStats> GuestProcess::CallMethod(const std::string& method_name,
                                              const std::string& type_sig) {
  FW_CHECK_MSG(loaded_fn_ != nullptr, "no application loaded");
  const MethodDef* method = loaded_fn_->FindMethod(method_name);
  FW_CHECK_MSG(method != nullptr, ("no method " + method_name).c_str());

  const fwbase::SimTime t0 = sim_.Now();
  ++invocation_serial_;

  // Guest-identity probes: the id, first RNG draw and monotonic timestamp
  // this invocation observes, drawn before any other work — two clones
  // resumed from one snapshot read them from byte-identical state, so equal
  // values here are the uniqueness violation the detector tests assert on.
  const uint64_t request_id = NextRequestId();
  const uint64_t first_random = GuestRandomU64();
  const int64_t entry_monotonic_ns = GuestMonotonicNanos();

  // Numba's per-module duplication: the first execution in a resumed clone
  // relocates/duplicates part of the JIT code cache, dirtying those pages.
  if (pending_clone_jit_relocation_) {
    pending_clone_jit_relocation_ = false;
    if (jit_code_bytes_used_ > 0 && costs_.jit_code_shareable_fraction < 1.0) {
      const fwmem::SegmentId jit_seg = space_.SegmentByName(kSegJitCode);
      const uint64_t used_pages = PagesFor(jit_code_bytes_used_);
      const auto dirty_pages = static_cast<uint64_t>(
          static_cast<double>(used_pages) * (1.0 - costs_.jit_code_shareable_fraction) + 0.5);
      ExecStats reloc_stats;
      co_await ChargeFaults(space_.Dirty(jit_seg, 0, std::min(dirty_pages, used_pages)),
                            reloc_stats);
    }
  }

  // Executing makes the runtime's own working set resident: reads of the
  // binary text and the live heap. The salt is a program-wide constant so
  // every clone touches the *same* hot pages — that is what snapshot clones
  // share (Fig 4).
  {
    ExecStats ws_stats;
    fwmem::FaultCounts faults;
    faults += space_.TouchRandomFraction(space_.SegmentByName(kSegRuntimeText),
                                         costs_.runtime_text_exec_touch_fraction, /*salt=*/42);
    faults += space_.TouchRandomFraction(space_.SegmentByName(kSegRuntimeHeap),
                                         costs_.runtime_heap_exec_touch_fraction, /*salt=*/43);
    co_await ChargeFaults(faults, ws_stats);
  }

  ExecStats stats = co_await ExecMethod(*method, type_sig, /*depth=*/0);

  // Per-invocation GC / cache churn in the runtime heap: writes that diverge
  // per sandbox (hence the per-sandbox salt).
  const fwmem::SegmentId heap = space_.SegmentByName(kSegRuntimeHeap);
  co_await ChargeFaults(
      space_.DirtyRandomFraction(heap, costs_.runtime_heap_exec_dirty_fraction,
                                 /*salt=*/mem_salt_ * 7919 + 13),
      stats);

  stats.total = sim_.Now() - t0;
  // Assigned (not +=-accumulated): the outermost call's observables survive
  // the sub-call merges above.
  stats.request_id = request_id;
  stats.first_random = first_random;
  stats.guest_monotonic_ns = entry_monotonic_ns;
  co_return stats;
}

fwsim::Co<ExecStats> GuestProcess::ExecMethod(const MethodDef& method,
                                              const std::string& type_sig, int depth) {
  FW_CHECK_MSG(depth < 64, "method call depth exceeded");
  ExecStats stats;
  ++stats.methods_executed;
  MethodState& state = methods_[method.name];
  ++state.invocations;

  // --- Tiering / de-optimisation decisions --------------------------------
  if (state.tier == ExecTier::kJit && !state.polymorphic && state.compiled_sig != type_sig) {
    // The JITted code was specialised for a different type profile (§6):
    // de-optimise to bytecode, then respecialise for the new signature. After
    // enough distinct shapes, inline caches make the code polymorphic and
    // further signatures stop deopting.
    ++stats.deopts;
    ++state.deopts;
    co_await fwsim::Delay(sim_, costs_.deopt_cost);
    // methods_ is a node-based map: references survive insertion of other
    // methods, and nothing ever erases an entry.
    state.tier = ExecTier::kInterpreter;  // fwlint:allow(iterator-invalidation)
    if (state.deopts >= kPolymorphicThreshold) {
      state.polymorphic = true;
    }
    if (method.jit_annotated) {
      // Annotated (Numba-style) methods respecialise for the new signature
      // immediately; V8 re-optimises hot methods just as eagerly.
      co_await JitCompile(method, state, type_sig, /*reoptimize=*/true, stats);
    } else {
      state.invocations = 0;  // Re-profile before tiering up again.
    }
  } else if (state.tier == ExecTier::kInterpreter) {
    const bool annotated_first_call = method.jit_annotated && state.compiles == 0;
    const bool hot = costs_.auto_jit &&
                     state.invocations >= static_cast<uint64_t>(costs_.hotness_threshold);
    if (annotated_first_call || hot) {
      co_await JitCompile(method, state, type_sig, /*reoptimize=*/state.compiles > 0, stats);
    }
  }

  // Executing code touches its pages: bytecode when interpreting, machine
  // code when running JITted (shared on snapshot clones until written).
  {
    fwmem::FaultCounts faults;
    if (state.tier == ExecTier::kJit) {
      const fwmem::SegmentId jit_seg = space_.SegmentByName(kSegJitCode);
      faults += space_.Touch(jit_seg, state.jit_offset_page, state.jit_pages);
    } else if (bytecode_bytes_used_ > 0) {
      const fwmem::SegmentId bc = space_.SegmentByName(kSegBytecode);
      faults += space_.TouchBytes(bc, bytecode_bytes_used_);
    }
    co_await ChargeFaults(faults, stats);
  }

  const ExecTier tier = state.tier;
  const double jit_derate = state.polymorphic ? kPolymorphicDerate : 1.0;
  for (const Op& op : method.ops) {
    co_await ExecOp(op, tier, jit_derate, type_sig, stats, depth);
  }
  co_return stats;
}

fwsim::Co<void> GuestProcess::ExecOp(const Op& op, ExecTier tier, double jit_derate,
                                     const std::string& type_sig, ExecStats& stats,
                                     int depth) {
  switch (op.kind) {
    case OpKind::kCompute: {
      Duration t = costs_.per_unit_interp * static_cast<int64_t>(op.amount * op.repeat);
      if (tier == ExecTier::kJit) {
        // Only the JIT-friendly fraction accelerates (numeric kernels);
        // the rest behaves interpreter-like (object/string plumbing).
        // Polymorphic code dispatches through inline caches (derate < 1).
        t = t * (op.friendliness / (costs_.jit_speedup * jit_derate) +
                 (1.0 - op.friendliness));
      }
      t = t * compute_scale_;
      stats.compute_time += t;
      co_await fwsim::Delay(sim_, t);
      break;
    }
    case OpKind::kDiskRead:
    case OpKind::kDiskWrite: {
      FW_CHECK_MSG(env_.fs != nullptr, "disk op without a filesystem");
      const fwbase::SimTime t0 = sim_.Now();
      for (uint64_t i = 0; i < op.repeat; ++i) {
        if (op.kind == OpKind::kDiskRead) {
          co_await env_.fs->ReadFile(op.amount);
        } else {
          co_await env_.fs->WriteFile(op.amount);
        }
      }
      stats.io_time += sim_.Now() - t0;
      break;
    }
    case OpKind::kNetSend: {
      const fwbase::SimTime t0 = sim_.Now();
      if (env_.net_send != nullptr) {
        co_await env_.net_send(op.amount);
      } else {
        co_await fwsim::Delay(sim_, Duration::Micros(80));
      }
      stats.io_time += sim_.Now() - t0;
      break;
    }
    case OpKind::kDbPut: {
      FW_CHECK_MSG(env_.db != nullptr, "db op without a document db");
      const fwbase::SimTime t0 = sim_.Now();
      co_await fwsim::Delay(sim_, env_.db_network_rtt);
      const std::string key = fwbase::StrFormat("doc-%llu", static_cast<unsigned long long>(
                                                                invocation_serial_));
      fwbase::Status status = co_await env_.db->Put(
          op.target, fwstore::Document(key, std::string(op.amount, 'x')));
      FW_CHECK(status.ok());
      stats.io_time += sim_.Now() - t0;
      break;
    }
    case OpKind::kDbGet: {
      FW_CHECK_MSG(env_.db != nullptr, "db op without a document db");
      const fwbase::SimTime t0 = sim_.Now();
      co_await fwsim::Delay(sim_, env_.db_network_rtt);
      const auto parts = fwbase::StrSplit(op.target, '/');
      FW_CHECK(parts.size() == 2);
      // A miss is not an error for the workloads (e.g. empty reminder list).
      co_await env_.db->Get(parts[0], parts[1]);
      stats.io_time += sim_.Now() - t0;
      break;
    }
    case OpKind::kDbScan: {
      FW_CHECK_MSG(env_.db != nullptr, "db op without a document db");
      const fwbase::SimTime t0 = sim_.Now();
      co_await fwsim::Delay(sim_, env_.db_network_rtt);
      co_await env_.db->Scan(op.target);
      stats.io_time += sim_.Now() - t0;
      break;
    }
    case OpKind::kCall: {
      const MethodDef* callee = loaded_fn_->FindMethod(op.target);
      FW_CHECK_MSG(callee != nullptr, ("no method " + op.target).c_str());
      for (uint64_t i = 0; i < op.repeat; ++i) {
        ExecStats sub = co_await ExecMethod(*callee, type_sig, depth + 1);
        stats += sub;
      }
      break;
    }
    case OpKind::kAllocHeap: {
      const fwmem::SegmentId heap = space_.SegmentByName(kSegAppHeap);
      const uint64_t seg_pages = space_.SegmentPages(heap);
      uint64_t pages = PagesFor(op.amount);
      fwmem::FaultCounts faults;
      while (pages > 0) {
        if (heap_cursor_pages_ >= seg_pages) {
          heap_cursor_pages_ = 0;  // The GC recycles the heap.
        }
        const uint64_t chunk = std::min(pages, seg_pages - heap_cursor_pages_);
        faults += space_.Dirty(heap, heap_cursor_pages_, chunk);
        heap_cursor_pages_ += chunk;
        pages -= chunk;
      }
      co_await ChargeFaults(faults, stats);
      break;
    }
  }
}

GuestProcess::State GuestProcess::ExtractState() const {
  FW_CHECK_MSG(runtime_booted_, "cannot extract state from an unbooted process");
  State state;
  state.language = language_;
  state.loaded_fn = loaded_fn_;
  state.methods = methods_;
  state.jit_code_bytes_used = jit_code_bytes_used_;
  state.bytecode_bytes_used = bytecode_bytes_used_;
  state.jit_alloc_cursor_pages = jit_alloc_cursor_pages_;
  return state;
}

std::unique_ptr<GuestProcess> GuestProcess::FromState(const State& state,
                                                      fwsim::Simulation& sim,
                                                      fwmem::AddressSpace& clone_space,
                                                      ExecEnv env, FaultCharger fault_charger,
                                                      double compute_scale) {
  auto clone = std::make_unique<GuestProcess>(sim, state.language, clone_space, std::move(env),
                                              std::move(fault_charger), compute_scale);
  clone->runtime_booted_ = true;
  clone->loaded_fn_ = state.loaded_fn;
  clone->methods_ = state.methods;
  clone->jit_code_bytes_used_ = state.jit_code_bytes_used;
  clone->bytecode_bytes_used_ = state.bytecode_bytes_used;
  clone->jit_alloc_cursor_pages_ = state.jit_alloc_cursor_pages;
  clone->pending_clone_jit_relocation_ = state.jit_code_bytes_used > 0;
  if (clone_space.guest_identity().valid) {
    // The modeled collision (DESIGN.md §15): the clone wakes with the exact
    // identity record the snapshot captured — same RNG position, same clock
    // base, same request-id counter as every sibling clone — until a
    // generation change reseeds it.
    clone->identity_ = clone_space.guest_identity();
  } else {
    // Restored into a space that never held an identity (synthetic test
    // spaces): behave like a boot.
    clone->SeedIdentity(clone->boot_entropy_);
  }
  return clone;
}

std::unique_ptr<GuestProcess> GuestProcess::CloneFor(fwmem::AddressSpace& clone_space,
                                                     FaultCharger fault_charger) const {
  auto clone = FromState(ExtractState(), sim_, clone_space, env_, std::move(fault_charger),
                         compute_scale_);
  clone->mem_salt_ = mem_salt_ + 1;
  return clone;
}

ExecTier GuestProcess::TierOf(const std::string& method_name) const {
  auto it = methods_.find(method_name);
  return it == methods_.end() ? ExecTier::kInterpreter : it->second.tier;
}

uint64_t GuestProcess::InvocationCount(const std::string& method_name) const {
  auto it = methods_.find(method_name);
  return it == methods_.end() ? 0 : it->second.invocations;
}

}  // namespace fwlang
