// A minimal JSON value + recursive-descent parser (no external dependencies).
//
// Supports the subset the function-definition format needs: objects, arrays,
// strings (with standard escapes), numbers, booleans and null. Parse errors
// carry a byte offset and a human-readable reason.
#ifndef FIREWORKS_SRC_LANG_JSON_H_
#define FIREWORKS_SRC_LANG_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/base/status.h"

namespace fwlang {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : v_(nullptr) {}
  explicit JsonValue(std::nullptr_t) : v_(nullptr) {}
  explicit JsonValue(bool b) : v_(b) {}
  explicit JsonValue(double d) : v_(d) {}
  explicit JsonValue(std::string s) : v_(std::move(s)) {}
  explicit JsonValue(Array a) : v_(std::move(a)) {}
  explicit JsonValue(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool AsBool() const { return std::get<bool>(v_); }
  double AsNumber() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  const Array& AsArray() const { return std::get<Array>(v_); }
  const Object& AsObject() const { return std::get<Object>(v_); }

  // Object field lookup; nullptr if absent or not an object.
  const JsonValue* Find(const std::string& key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

// Parses a complete JSON document (rejects trailing garbage).
fwbase::Result<JsonValue> ParseJson(std::string_view text);

// Serializes with no insignificant whitespace; object keys sorted (map order).
std::string JsonToString(const JsonValue& value);

// Escapes a string for embedding in JSON output (adds quotes).
std::string JsonQuote(std::string_view s);

}  // namespace fwlang

#endif  // FIREWORKS_SRC_LANG_JSON_H_
