#include "src/obs/trace.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/base/strings.h"

namespace fwobs {

void Span::SetAttribute(std::string key, std::string value) {
  attrs_.emplace_back(std::move(key), std::move(value));
}

void Span::SetAttribute(std::string key, uint64_t value) {
  attrs_.emplace_back(std::move(key),
                      fwbase::StrFormat("%llu", static_cast<unsigned long long>(value)));
}

void Span::SetAttribute(std::string key, double value) {
  attrs_.emplace_back(std::move(key), fwbase::StrFormat("%g", value));
}

std::string Span::ToString() const {
  return fwbase::StrFormat("%s [%s, %s]", name_.c_str(), FormatSimTime(start_).c_str(),
                           finished_ ? duration().ToString().c_str() : "open");
}

Tracer::Tracer(SimClockFn clock) : clock_(std::move(clock)) {
  FW_CHECK_MSG(clock_ != nullptr, "tracer needs a sim clock");
}

void Tracer::set_profiler(Profiler* profiler) {
  profiler_ = profiler;
  bookkeeping_scope_ =
      profiler == nullptr ? 0 : profiler->RegisterScope("obs.span.bookkeeping");
}

Span* Tracer::StartSpan(std::string name, std::string category) {
  if (!enabled_) {
    return nullptr;
  }
  FW_PROFILE_SCOPE_ID(profiler_, bookkeeping_scope_);
  Span& span = spans_.emplace_back();
  span.name_ = std::move(name);
  span.category_ = std::move(category);
  span.id_ = next_id_++;
  span.parent_id_ = stack_.empty() ? kNoSpan : stack_.back()->id_;
  span.start_ = clock_();
  span.end_ = span.start_;
  stack_.push_back(&span);
  return &span;
}

void Tracer::EndSpan(Span* span) {
  if (span == nullptr || span->finished_) {
    return;
  }
  FW_PROFILE_SCOPE_ID(profiler_, bookkeeping_scope_);
  span->end_ = clock_();
  span->finished_ = true;
  auto it = std::find(stack_.rbegin(), stack_.rend(), span);
  if (it != stack_.rend()) {
    stack_.erase(std::next(it).base());
  }
}

std::vector<const Span*> Tracer::ChildrenOf(SpanId parent) const {
  std::vector<const Span*> children;
  for (const Span& span : spans_) {
    if (span.parent_id_ == parent) {
      children.push_back(&span);
    }
  }
  return children;
}

const Span* Tracer::FindSpan(const std::string& name) const {
  for (const Span& span : spans_) {
    if (span.name_ == name) {
      return &span;
    }
  }
  return nullptr;
}

void Tracer::Clear() {
  spans_.clear();
  stack_.clear();
}

}  // namespace fwobs
