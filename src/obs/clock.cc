#include "src/obs/clock.h"

namespace fwobs {

std::string FormatSimTime(fwbase::SimTime t) { return t.ToString(); }

}  // namespace fwobs
