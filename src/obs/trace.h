// Span tracer driven by the simulated clock.
//
// A Span is one named, timed region of simulated work (a snapshot restore, a
// broker produce, a whole invocation). Spans nest: StartSpan records the
// currently-open span as the parent, so an Invoke produces a tree whose leaf
// durations decompose the end-to-end latency — the Fig 6/7 stacking measured
// instead of reconstructed.
//
// Recording is pure observation: starting or ending a span never advances the
// clock, schedules an event, or touches the RNG, so a traced run is
// bit-identical to an untraced one. A disabled tracer (the default) costs one
// branch per instrumentation point and records nothing.
//
// Span pointers returned by StartSpan stay valid until Clear() (storage is a
// deque). ScopedSpan is the RAII form used at instrumentation sites; it
// tolerates a null tracer and early End() calls, and closes the span when the
// enclosing coroutine frame is destroyed on an error path.
#ifndef FIREWORKS_SRC_OBS_TRACE_H_
#define FIREWORKS_SRC_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "src/base/units.h"
#include "src/obs/clock.h"
#include "src/obs/profiler.h"

namespace fwobs {

using fwbase::Duration;
using fwbase::SimTime;

using SpanId = uint64_t;
inline constexpr SpanId kNoSpan = 0;

class Span {
 public:
  Span() = default;

  const std::string& name() const { return name_; }
  const std::string& category() const { return category_; }
  SpanId id() const { return id_; }
  SpanId parent_id() const { return parent_id_; }
  bool is_root() const { return parent_id_ == kNoSpan; }
  SimTime start() const { return start_; }
  SimTime end() const { return end_; }
  bool finished() const { return finished_; }
  Duration duration() const { return end_ - start_; }

  // Key/value annotations exported into the Chrome trace's "args".
  void SetAttribute(std::string key, std::string value);
  void SetAttribute(std::string key, uint64_t value);
  void SetAttribute(std::string key, double value);
  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attrs_;
  }

  // "name [t=0.001000s, 1.20ms]" — timestamps via the single formatting path.
  std::string ToString() const;

 private:
  friend class Tracer;

  std::string name_;
  std::string category_;
  SpanId id_ = kNoSpan;
  SpanId parent_id_ = kNoSpan;
  SimTime start_;
  SimTime end_;
  bool finished_ = false;
  std::vector<std::pair<std::string, std::string>> attrs_;
};

class Tracer {
 public:
  explicit Tracer(SimClockFn clock);

  // Disabled by default so every run (benches, examples, tests) is untraced
  // unless it opts in.
  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // Opens a span whose parent is the innermost still-open span. Returns
  // nullptr when disabled (every Span* path below is null-safe).
  Span* StartSpan(std::string name, std::string category = std::string());

  // Closes `span` at the current simulated time. Null-safe and idempotent.
  // Spans closed out of order (possible when coroutines interleave) are
  // removed from wherever they sit on the open stack; their children keep the
  // recorded parent links.
  void EndSpan(Span* span);

  // Innermost open span, or nullptr.
  Span* CurrentSpan() { return stack_.empty() ? nullptr : stack_.back(); }

  // All spans in start order; open spans have finished() == false.
  const std::deque<Span>& spans() const { return spans_; }
  size_t span_count() const { return spans_.size(); }

  // Direct children of `parent`, in start order.
  std::vector<const Span*> ChildrenOf(SpanId parent) const;
  // First span with the given name, or nullptr.
  const Span* FindSpan(const std::string& name) const;

  // Drops every recorded span (invalidates outstanding Span pointers).
  void Clear();

  // Attributes span bookkeeping cost (allocation, parent lookup, mid-stack
  // removal) to `profiler`'s "obs.span.bookkeeping" scope. Observation only;
  // pass nullptr to detach. Wired automatically by Observability.
  void set_profiler(Profiler* profiler);

 private:
  SimClockFn clock_;
  Profiler* profiler_ = nullptr;
  ProfScopeId bookkeeping_scope_ = 0;
  bool enabled_ = false;
  SpanId next_id_ = 1;
  // Observational buffer, not a dispatch queue: growth tracks completed
  // spans and tests/benches drain it with TakeSpans().
  std::deque<Span> spans_;  // fwlint:allow(unbounded-queue)
  std::vector<Span*> stack_;  // Open spans, innermost last.
};

// RAII instrumentation point. Usage:
//   fwobs::ScopedSpan span(tracer_, "invoke.restore");
//   ... co_await work ...
//   span.End();  // Optional; the destructor ends it otherwise.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name, std::string category = std::string())
      : tracer_(tracer),
        span_(tracer == nullptr ? nullptr
                                : tracer->StartSpan(std::move(name), std::move(category))) {}
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Safe to call early and more than once; the destructor is then a no-op.
  void End() {
    if (span_ != nullptr) {
      tracer_->EndSpan(span_);
    }
  }

  // The underlying span (valid after End(), until the tracer is cleared);
  // nullptr when tracing is disabled.
  Span* get() const { return span_; }

  void SetAttribute(std::string key, std::string value) {
    if (span_ != nullptr) {
      span_->SetAttribute(std::move(key), std::move(value));
    }
  }
  void SetAttribute(std::string key, uint64_t value) {
    if (span_ != nullptr) {
      span_->SetAttribute(std::move(key), value);
    }
  }

 private:
  Tracer* tracer_;
  Span* span_;
};

}  // namespace fwobs

#endif  // FIREWORKS_SRC_OBS_TRACE_H_
