// Metrics registry: labeled counter / gauge / histogram families.
//
// Naming convention is `subsystem.verb.unit` (e.g. "bus.produce.micros",
// "mem.fault.cow.count", "store.snapshot.used_bytes"); an optional label
// distinguishes members of one family ("bus.produce.count{topic=...}").
// Instruments are created on first use and live for the registry's lifetime
// (std::map nodes — pointers handed to hot paths stay valid), so a subsystem
// resolves its instruments once and then pays one add per event.
//
// Like the tracer, recording is pure observation: metrics never touch the
// simulated clock, so instrumented and uninstrumented runs are bit-identical.
#ifndef FIREWORKS_SRC_OBS_METRICS_H_
#define FIREWORKS_SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "src/base/stats.h"

namespace fwobs {

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

// Point-in-time level (queue depth, resident bytes).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

// Latency/size distribution: exact order statistics from SampleStats plus the
// power-of-two LogHistogram for cheap tail bounds and compact rendering.
class Histogram {
 public:
  void Observe(uint64_t value) {
    log_.Add(value);
    stats_.Add(static_cast<double>(value));
  }

  uint64_t count() const { return log_.count(); }
  const fwbase::SampleStats& stats() const { return stats_; }
  const fwbase::LogHistogram& log_histogram() const { return log_; }
  void Reset() {
    log_ = fwbase::LogHistogram();
    stats_ = fwbase::SampleStats();
  }

 private:
  fwbase::LogHistogram log_;
  fwbase::SampleStats stats_;
};

class MetricsRegistry {
 public:
  // Find-or-create; the returned reference stays valid for the registry's
  // lifetime. Asking for the same (name, label) with a different instrument
  // kind is a programming error and FW_CHECKs.
  Counter& GetCounter(const std::string& name, const std::string& label = std::string());
  Gauge& GetGauge(const std::string& name, const std::string& label = std::string());
  Histogram& GetHistogram(const std::string& name, const std::string& label = std::string());

  // Read-only lookups for tests and dumps: value of an existing instrument,
  // or the zero value if it was never touched.
  uint64_t CounterValue(const std::string& name, const std::string& label = std::string()) const;
  double GaugeValue(const std::string& name, const std::string& label = std::string()) const;
  const Histogram* FindHistogram(const std::string& name,
                                 const std::string& label = std::string()) const;

  // Plain-text dump, one instrument per line, sorted by name.
  std::string ToText() const;

  // Zeroes every instrument but keeps registrations (and outstanding
  // pointers) intact — the snapshot/reset idiom between bench phases.
  void Reset();

  size_t size() const;

 private:
  using Key = std::pair<std::string, std::string>;  // (name, label).

  static std::string RenderKey(const Key& key);

  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, Histogram> histograms_;
};

}  // namespace fwobs

#endif  // FIREWORKS_SRC_OBS_METRICS_H_
