// The observability layer's view of simulated time.
//
// Everything in src/obs is clock-agnostic: a Tracer is handed a SimClockFn at
// construction and never talks to the Simulation directly, so the layer sits
// below simcore in the dependency order (obs depends only on base).
//
// FormatSimTime is the single sim-time formatting path: the sim kernel's
// FW_LOG time-source prefix and every human-readable span/metrics timestamp
// route through it, so log lines and trace timestamps can never disagree.
#ifndef FIREWORKS_SRC_OBS_CLOCK_H_
#define FIREWORKS_SRC_OBS_CLOCK_H_

#include <functional>
#include <string>

#include "src/base/units.h"

namespace fwobs {

// Returns the current simulated time. Installed by whoever owns the clock
// (HostEnv hands the Tracer a lambda over its Simulation).
using SimClockFn = std::function<fwbase::SimTime()>;

// Canonical human-readable rendering of a simulated timestamp ("t=1.234567s").
std::string FormatSimTime(fwbase::SimTime t);

}  // namespace fwobs

#endif  // FIREWORKS_SRC_OBS_CLOCK_H_
