#include "src/obs/export.h"

#include "src/base/strings.h"

namespace fwobs {
namespace {

// Minimal JSON string escaping (quotes, backslashes, control characters).
// Local on purpose: obs sits below fwlang and cannot use its JSON helpers.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += fwbase::StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

void ChromeTraceBuilder::AddProcess(const std::string& name, const Tracer& tracer) {
  const int pid = next_pid_++;
  events_.push_back(fwbase::StrFormat(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":1,\"args\":{\"name\":%s}}",
      pid, JsonEscape(name).c_str()));
  for (const Span& span : tracer.spans()) {
    if (!span.finished()) {
      continue;  // Open spans have no extent; they only arise on error paths.
    }
    std::string args;
    for (const auto& [key, value] : span.attributes()) {
      args += fwbase::StrFormat("%s%s:%s", args.empty() ? "" : ",", JsonEscape(key).c_str(),
                                JsonEscape(value).c_str());
    }
    events_.push_back(fwbase::StrFormat(
        "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":%d,\"tid\":1,\"args\":{%s}}",
        JsonEscape(span.name()).c_str(),
        JsonEscape(span.category().empty() ? "sim" : span.category()).c_str(),
        static_cast<double>(span.start().nanos()) / 1e3,
        static_cast<double>(span.duration().nanos()) / 1e3, pid, args.c_str()));
  }
}

std::string ChromeTraceBuilder::ToJson() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += "\n  ";
    out += events_[i];
  }
  out += "\n]}\n";
  return out;
}

std::string ChromeTraceJson(const Tracer& tracer, const std::string& process_name) {
  ChromeTraceBuilder builder;
  builder.AddProcess(process_name, tracer);
  return builder.ToJson();
}

std::string MetricsText(const MetricsRegistry& metrics) { return metrics.ToText(); }

}  // namespace fwobs
