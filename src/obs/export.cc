#include "src/obs/export.h"

#include <algorithm>

#include "src/base/strings.h"

namespace fwobs {
namespace {

// Length of the valid UTF-8 sequence starting at s[i], or 0 if the bytes
// there are not well-formed UTF-8 (truncated sequence, bad continuation
// byte, overlong encoding, surrogate, or > U+10FFFF).
size_t Utf8SequenceLength(const std::string& s, size_t i) {
  const unsigned char lead = static_cast<unsigned char>(s[i]);
  size_t len;
  unsigned char lo = 0x80;
  unsigned char hi = 0xbf;
  if (lead < 0x80) {
    return 1;
  } else if (lead >= 0xc2 && lead <= 0xdf) {
    len = 2;
  } else if (lead >= 0xe0 && lead <= 0xef) {
    len = 3;
    if (lead == 0xe0) {
      lo = 0xa0;  // reject overlong
    } else if (lead == 0xed) {
      hi = 0x9f;  // reject UTF-16 surrogates
    }
  } else if (lead >= 0xf0 && lead <= 0xf4) {
    len = 4;
    if (lead == 0xf0) {
      lo = 0x90;  // reject overlong
    } else if (lead == 0xf4) {
      hi = 0x8f;  // reject > U+10FFFF
    }
  } else {
    return 0;  // 0x80..0xc1 and 0xf5..0xff are never lead bytes
  }
  if (i + len > s.size()) {
    return 0;
  }
  for (size_t k = 1; k < len; ++k) {
    const unsigned char c = static_cast<unsigned char>(s[i + k]);
    const unsigned char min = (k == 1) ? lo : 0x80;
    const unsigned char max = (k == 1) ? hi : 0xbf;
    if (c < min || c > max) {
      return 0;
    }
  }
  return len;
}

// JSON string escaping. Local on purpose: obs sits below fwlang and cannot
// use its JSON helpers. Span names and attribute values are arbitrary bytes
// (workload traces put user strings in them), so beyond the mandatory
// escapes this validates UTF-8 and renders any invalid byte as \u00XX —
// the output document is always valid UTF-8 JSON that chrome://tracing and
// strict parsers accept.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (size_t i = 0; i < s.size();) {
    const char c = s[i];
    switch (c) {
      case '"':
        out += "\\\"";
        ++i;
        continue;
      case '\\':
        out += "\\\\";
        ++i;
        continue;
      case '\n':
        out += "\\n";
        ++i;
        continue;
      case '\t':
        out += "\\t";
        ++i;
        continue;
      case '\r':
        out += "\\r";
        ++i;
        continue;
      default:
        break;
    }
    const unsigned char byte = static_cast<unsigned char>(c);
    if (byte < 0x20) {
      out += fwbase::StrFormat("\\u%04x", byte);
      ++i;
      continue;
    }
    const size_t len = Utf8SequenceLength(s, i);
    if (len == 0) {
      out += fwbase::StrFormat("\\u%04x", byte);  // invalid UTF-8 byte
      ++i;
      continue;
    }
    out.append(s, i, len);
    i += len;
  }
  out += '"';
  return out;
}

}  // namespace

void ChromeTraceBuilder::AddProcess(const std::string& name, const Tracer& tracer) {
  const int pid = next_pid_++;
  events_.push_back(fwbase::StrFormat(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":1,\"args\":{\"name\":%s}}",
      pid, JsonEscape(name).c_str()));
  for (const Span& span : tracer.spans()) {
    if (!span.finished()) {
      continue;  // Open spans have no extent; they only arise on error paths.
    }
    std::string args;
    for (const auto& [key, value] : span.attributes()) {
      args += fwbase::StrFormat("%s%s:%s", args.empty() ? "" : ",", JsonEscape(key).c_str(),
                                JsonEscape(value).c_str());
    }
    events_.push_back(fwbase::StrFormat(
        "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":%d,\"tid\":1,\"args\":{%s}}",
        JsonEscape(span.name()).c_str(),
        JsonEscape(span.category().empty() ? "sim" : span.category()).c_str(),
        static_cast<double>(span.start().nanos()) / 1e3,
        static_cast<double>(span.duration().nanos()) / 1e3, pid, args.c_str()));
  }
}

std::string ChromeTraceBuilder::ToJson() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += "\n  ";
    out += events_[i];
  }
  out += "\n]}\n";
  return out;
}

std::string ChromeTraceJson(const Tracer& tracer, const std::string& process_name) {
  ChromeTraceBuilder builder;
  builder.AddProcess(process_name, tracer);
  return builder.ToJson();
}

std::string MetricsText(const MetricsRegistry& metrics) { return metrics.ToText(); }

namespace {

// Exclusive time per path node in one dimension: total minus direct-child
// totals, clamped at zero (out-of-order exits; see profiler.h).
std::vector<int64_t> SelfNanos(const std::vector<Profiler::PathNode>& nodes, ProfileDim dim) {
  std::vector<int64_t> self(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    self[i] = dim == ProfileDim::kWall ? nodes[i].wall_total_nanos : nodes[i].sim_total_nanos;
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].parent >= 0) {
      self[nodes[i].parent] -=
          dim == ProfileDim::kWall ? nodes[i].wall_total_nanos : nodes[i].sim_total_nanos;
    }
  }
  for (int64_t& v : self) {
    v = std::max<int64_t>(v, 0);
  }
  return self;
}

std::string PathString(const Profiler& profiler, size_t node_index) {
  const auto& nodes = profiler.nodes();
  std::vector<const std::string*> parts;
  for (int32_t i = static_cast<int32_t>(node_index); i >= 0; i = nodes[i].parent) {
    parts.push_back(&profiler.scope_name(nodes[i].scope));
  }
  std::string path;
  for (size_t i = parts.size(); i > 0; --i) {
    if (!path.empty()) {
      path += ';';
    }
    path += *parts[i - 1];
  }
  return path;
}

}  // namespace

std::string ProfilerCollapsed(const Profiler& profiler, ProfileDim dim) {
  const std::vector<int64_t> self = SelfNanos(profiler.nodes(), dim);
  std::vector<std::string> lines;
  for (size_t i = 0; i < self.size(); ++i) {
    if (self[i] <= 0) {
      continue;
    }
    lines.push_back(fwbase::StrFormat("%s %lld\n", PathString(profiler, i).c_str(),
                                      static_cast<long long>(self[i])));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
  }
  return out;
}

std::string ProfilerTopN(const Profiler& profiler, size_t n) {
  std::string out = fwbase::StrFormat("%-36s %12s %14s %14s %14s %14s\n", "scope", "calls",
                                      "wall self", "wall total", "sim self", "sim total");
  for (const Profiler::ScopeTotals& t : profiler.TopN(n)) {
    out += fwbase::StrFormat(
        "%-36s %12llu %14s %14s %14s %14s\n", t.name.c_str(),
        static_cast<unsigned long long>(t.calls),
        fwbase::Duration::Nanos(t.wall_self_nanos).ToString().c_str(),
        fwbase::Duration::Nanos(t.wall_total_nanos).ToString().c_str(),
        fwbase::Duration::Nanos(t.sim_self_nanos).ToString().c_str(),
        fwbase::Duration::Nanos(t.sim_total_nanos).ToString().c_str());
  }
  return out;
}

}  // namespace fwobs
