// The per-host observability bundle: Tracer + MetricsRegistry + Profiler.
//
// HostEnv owns an Observability wired to its Simulation's clock and threads a
// pointer to it into every subsystem (hypervisor, broker, snapshot store,
// host memory); platforms add spans on top. Subsystems treat the pointer as
// optional so they keep working when constructed standalone in unit tests.
// All three instruments are pure observation: enabling or disabling any of
// them never perturbs event order, the sim clock, or RNG draws.
#ifndef FIREWORKS_SRC_OBS_OBSERVABILITY_H_
#define FIREWORKS_SRC_OBS_OBSERVABILITY_H_

#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"

namespace fwobs {

class Observability {
 public:
  explicit Observability(SimClockFn clock) : tracer_(clock), profiler_(std::move(clock)) {
    tracer_.set_profiler(&profiler_);
  }

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Profiler& profiler() { return profiler_; }
  const Profiler& profiler() const { return profiler_; }

 private:
  Tracer tracer_;
  MetricsRegistry metrics_;
  Profiler profiler_;
};

}  // namespace fwobs

#endif  // FIREWORKS_SRC_OBS_OBSERVABILITY_H_
