// The per-host observability bundle: one Tracer + one MetricsRegistry.
//
// HostEnv owns an Observability wired to its Simulation's clock and threads a
// pointer to it into every subsystem (hypervisor, broker, snapshot store,
// host memory); platforms add spans on top. Subsystems treat the pointer as
// optional so they keep working when constructed standalone in unit tests.
#ifndef FIREWORKS_SRC_OBS_OBSERVABILITY_H_
#define FIREWORKS_SRC_OBS_OBSERVABILITY_H_

#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace fwobs {

class Observability {
 public:
  explicit Observability(SimClockFn clock) : tracer_(std::move(clock)) {}

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  Tracer tracer_;
  MetricsRegistry metrics_;
};

}  // namespace fwobs

#endif  // FIREWORKS_SRC_OBS_OBSERVABILITY_H_
