#include "src/obs/metrics.h"

#include <cmath>

#include "src/base/check.h"
#include "src/base/strings.h"

namespace fwobs {

std::string MetricsRegistry::RenderKey(const Key& key) {
  return key.second.empty() ? key.first
                            : fwbase::StrFormat("%s{%s}", key.first.c_str(), key.second.c_str());
}

Counter& MetricsRegistry::GetCounter(const std::string& name, const std::string& label) {
  const Key key(name, label);
  FW_CHECK_MSG(gauges_.count(key) == 0 && histograms_.count(key) == 0,
               "metric already registered with a different kind");
  return counters_[key];
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, const std::string& label) {
  const Key key(name, label);
  FW_CHECK_MSG(counters_.count(key) == 0 && histograms_.count(key) == 0,
               "metric already registered with a different kind");
  return gauges_[key];
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name, const std::string& label) {
  const Key key(name, label);
  FW_CHECK_MSG(counters_.count(key) == 0 && gauges_.count(key) == 0,
               "metric already registered with a different kind");
  return histograms_[key];
}

uint64_t MetricsRegistry::CounterValue(const std::string& name, const std::string& label) const {
  auto it = counters_.find(Key(name, label));
  return it == counters_.end() ? 0 : it->second.value();
}

double MetricsRegistry::GaugeValue(const std::string& name, const std::string& label) const {
  auto it = gauges_.find(Key(name, label));
  return it == gauges_.end() ? 0.0 : it->second.value();
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name,
                                                const std::string& label) const {
  auto it = histograms_.find(Key(name, label));
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::ToText() const {
  std::string out;
  for (const auto& [key, counter] : counters_) {
    out += fwbase::StrFormat("counter   %-44s %llu\n", RenderKey(key).c_str(),
                             static_cast<unsigned long long>(counter.value()));
  }
  for (const auto& [key, gauge] : gauges_) {
    out += fwbase::StrFormat("gauge     %-44s %g\n", RenderKey(key).c_str(), gauge.value());
  }
  for (const auto& [key, histogram] : histograms_) {
    const auto& stats = histogram.stats();
    if (stats.count() == 0) {
      out += fwbase::StrFormat("histogram %-44s count=0\n", RenderKey(key).c_str());
      continue;
    }
    out += fwbase::StrFormat(
        "histogram %-44s count=%lld min=%.1f mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
        RenderKey(key).c_str(), static_cast<long long>(stats.count()), stats.min(), stats.mean(),
        stats.Percentile(50.0), stats.Percentile(95.0), stats.Percentile(99.0), stats.max());
  }
  return out;
}

void MetricsRegistry::Reset() {
  for (auto& [key, counter] : counters_) {
    counter.Reset();
  }
  for (auto& [key, gauge] : gauges_) {
    gauge.Reset();
  }
  for (auto& [key, histogram] : histograms_) {
    histogram.Reset();
  }
}

size_t MetricsRegistry::size() const {
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace fwobs
