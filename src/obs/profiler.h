// Deterministic scope profiler: sim-time and host wall-time attribution.
//
// The profiler answers "where do 10M-invocation runs spend their time?" with
// two clocks at once:
//
//   * sim time   — how much *simulated* time elapsed while a scope was open.
//                  Meaningful for await-spanning scopes (an invocation in
//                  flight) and for driver scopes that pump the event loop
//                  (RunSync inside a bench phase).
//   * wall time  — how much *host* time the scope consumed. Meaningful for
//                  synchronous kernel scopes (event dispatch, page-table
//                  walks, bus bookkeeping), where sim time never advances.
//
// Determinism contract: the profiler is pure observation, exactly like spans
// and metrics. Wall-clock readings come from std::chrono::steady_clock but
// only ever flow *out* into reports — nothing read here may feed back into
// event ordering, the sim clock, or any RNG. `src/obs/profiler.*` is on the
// fwlint determinism allowlist for this reason, and
// tests/profiler_test.cc pins the contract: instrumented and uninstrumented
// cluster runs must produce bit-identical outcome digests.
//
// Usage follows the metrics-instrument idiom: resolve a ScopeId once
// (RegisterScope), then pay one branch per enter/exit when disabled:
//
//   void Broker::set_observability(Observability* obs) {
//     profiler_ = &obs->profiler();
//     produce_scope_ = profiler_->RegisterScope("bus.produce");
//   }
//   ...
//   { FW_PROFILE_SCOPE_ID(profiler_, produce_scope_); /* hot work */ }
//
// Scopes nest into call paths (a path-tree keyed by scope id), which is what
// the collapsed-stack exporter in export.h flattens into flamegraph input.
// Two departures from a classic profiler stack, both forced by coroutines:
//
//   * Exits may arrive out of order (a resumed coroutine's scope can outlive
//     the dispatch scope that resumed it); Exit removes the matching frame
//     mid-stack, same as Tracer::EndSpan.
//   * An await-spanning scope is entered *detached* (EnterDetached): it roots
//     its own path and never becomes the parent of scopes from interleaved
//     events, and it accumulates sim time only — exclusive wall time across
//     an await window would be meaningless.
#ifndef FIREWORKS_SRC_OBS_PROFILER_H_
#define FIREWORKS_SRC_OBS_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/base/units.h"
#include "src/obs/clock.h"

namespace fwobs {

// Dense index into the profiler's scope-name table; stable for the
// profiler's lifetime. Resolve once, like a metrics instrument.
using ProfScopeId = uint32_t;

class Profiler {
 public:
  explicit Profiler(SimClockFn clock);

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Disabled by default: enter/exit is then a single branch.
  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // Finds or creates the scope named `name`. Scope names double as the
  // hot-path registry for fwlint's hot-path-logging check: code inside a
  // profiled scope must not log below kWarning.
  ProfScopeId RegisterScope(const std::string& name);
  const std::string& scope_name(ProfScopeId id) const { return names_[id]; }
  size_t scope_count() const { return names_.size(); }

  // Opens a frame for `scope` nested under the innermost open attached
  // frame. Returns an opaque token for Exit(); 0 means "profiler disabled,
  // nothing to exit".
  uint64_t Enter(ProfScopeId scope);
  // Opens a detached (await-spanning) frame: rooted at the top level, never
  // a parent of interleaved scopes, sim-time attribution only.
  uint64_t EnterDetached(ProfScopeId scope);
  // Closes the frame `token`, tolerating out-of-order completion. Exiting
  // token 0 (or a token from before a Reset) is a no-op.
  void Exit(uint64_t token);

  // Aggregated per-scope totals across all call paths.
  struct ScopeTotals {
    std::string name;
    uint64_t calls = 0;
    int64_t sim_total_nanos = 0;
    int64_t sim_self_nanos = 0;
    int64_t wall_total_nanos = 0;
    int64_t wall_self_nanos = 0;
  };
  // Sorted by name. Self time is total minus the totals of child paths,
  // clamped at zero (out-of-order exits can make a child nominally outlive
  // its parent).
  std::vector<ScopeTotals> Totals() const;
  // Hottest scopes first, ranked by max(wall self, sim self) so synchronous
  // kernel scopes and await-spanning scopes share one leaderboard.
  std::vector<ScopeTotals> TopN(size_t n) const;

  // One call-path node, exposed for the collapsed-stack exporter.
  struct PathNode {
    ProfScopeId scope = 0;
    int32_t parent = -1;  // index into nodes(), -1 = root
    uint64_t calls = 0;
    int64_t sim_total_nanos = 0;
    int64_t wall_total_nanos = 0;
  };
  const std::vector<PathNode>& nodes() const { return nodes_; }

  // Merges another profiler's finished paths into this one, matching scopes
  // by name. Lets a bench fold per-host profilers into one report, the same
  // way ChromeTraceBuilder::AddProcess merges tracers.
  void Merge(const Profiler& other);

  // Drops all recorded paths and open frames; registered scopes survive.
  void Reset();

 private:
  struct Frame {
    uint64_t token = 0;
    uint32_t node = 0;       // index into nodes_
    bool detached = false;
    fwbase::SimTime sim_start;
    int64_t wall_start_nanos = 0;
  };

  uint64_t EnterFrame(ProfScopeId scope, bool detached);
  uint32_t FindOrCreateNode(int32_t parent, ProfScopeId scope);

  SimClockFn clock_;
  bool enabled_ = false;
  uint64_t next_token_ = 1;
  std::vector<std::string> names_;
  std::map<std::string, ProfScopeId> ids_;
  std::vector<PathNode> nodes_;
  // (parent, scope) -> node index; keeps FindOrCreateNode off a linear scan.
  std::map<std::pair<int32_t, ProfScopeId>, uint32_t> node_index_;
  std::vector<Frame> open_;
};

// RAII guard for one profiler scope. Null-safe and cheap when the profiler
// is absent or disabled (token stays 0, Exit is skipped).
class ProfileScope {
 public:
  ProfileScope(Profiler* p, ProfScopeId scope)
      : profiler_((p != nullptr && p->enabled()) ? p : nullptr),
        token_(profiler_ != nullptr ? profiler_->Enter(scope) : 0) {}
  ProfileScope(Profiler* p, const char* name)
      : profiler_((p != nullptr && p->enabled()) ? p : nullptr),
        token_(profiler_ != nullptr ? profiler_->Enter(profiler_->RegisterScope(name)) : 0) {}
  ~ProfileScope() {
    if (profiler_ != nullptr) {
      profiler_->Exit(token_);
    }
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Profiler* profiler_;
  uint64_t token_;
};

#define FW_PROFILE_CONCAT_INNER(a, b) a##b
#define FW_PROFILE_CONCAT(a, b) FW_PROFILE_CONCAT_INNER(a, b)

// Declares a named profiler scope covering the rest of the enclosing block.
// The scope name registers the block as a hot path with fwlint
// (hot-path-logging): no FW_LOG(kInfo)-or-lower inside.
#define FW_PROFILE_SCOPE(profiler, name) \
  ::fwobs::ProfileScope FW_PROFILE_CONCAT(fw_prof_scope_, __LINE__)((profiler), (name))
// Same, with a pre-resolved ProfScopeId for the hottest sites.
#define FW_PROFILE_SCOPE_ID(profiler, id) \
  ::fwobs::ProfileScope FW_PROFILE_CONCAT(fw_prof_scope_, __LINE__)((profiler), (id))

}  // namespace fwobs

#endif  // FIREWORKS_SRC_OBS_PROFILER_H_
