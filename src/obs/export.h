// Exporters: Chrome trace_event JSON and plain-text metrics dumps.
//
// The JSON output follows the Trace Event Format's "X" (complete) events and
// loads directly in chrome://tracing or https://ui.perfetto.dev: one row per
// process, spans nested by time containment, span attributes under "args".
// Timestamps are simulated microseconds since each run's t=0.
//
// ChromeTraceBuilder merges several runs (each its own Tracer, each starting
// at sim t=0) into one file by giving every run a distinct pid — that is how
// `bench --trace=<file>` shows all platforms side by side.
#ifndef FIREWORKS_SRC_OBS_EXPORT_H_
#define FIREWORKS_SRC_OBS_EXPORT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"

namespace fwobs {

class ChromeTraceBuilder {
 public:
  // Appends every finished span of `tracer` as a new process named `name`.
  // Copies the events out, so the tracer may be destroyed afterwards.
  void AddProcess(const std::string& name, const Tracer& tracer);

  bool empty() const { return events_.empty(); }
  size_t event_count() const { return events_.size(); }

  // The complete {"traceEvents": [...]} document.
  std::string ToJson() const;

 private:
  int next_pid_ = 1;
  std::vector<std::string> events_;  // Pre-serialized event objects.
};

// Single-tracer convenience wrapper around ChromeTraceBuilder.
std::string ChromeTraceJson(const Tracer& tracer, const std::string& process_name);

// Human-readable dump of every registered metric.
std::string MetricsText(const MetricsRegistry& metrics);

// Which profiler clock a report renders.
enum class ProfileDim {
  kWall,  // host wall time — where the simulator binary burns CPU
  kSim,   // simulated time — where modeled latency accrues
};

// Collapsed-stack ("folded") flamegraph lines: one "root;child;leaf <nanos>"
// line per call path with nonzero exclusive time in `dim`, sorted by path.
// Feeds flamegraph.pl / speedscope / inferno unmodified.
std::string ProfilerCollapsed(const Profiler& profiler, ProfileDim dim = ProfileDim::kWall);

// Human-readable top-N table of the hottest scopes (ranked like
// Profiler::TopN: max of wall self and sim self), with calls and self/total
// attribution in both dimensions.
std::string ProfilerTopN(const Profiler& profiler, size_t n = 10);

}  // namespace fwobs

#endif  // FIREWORKS_SRC_OBS_EXPORT_H_
