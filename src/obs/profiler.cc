#include "src/obs/profiler.h"

#include <algorithm>
#include <chrono>

#include "src/base/check.h"

namespace fwobs {
namespace {

// Host wall clock. Readings are report-only: they never feed back into the
// simulation (see the determinism contract in profiler.h).
int64_t WallNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t ClampNonNegative(int64_t v) { return v < 0 ? 0 : v; }

// Per-node exclusive time: total minus the totals of direct children,
// clamped at zero. Out-of-order exits can make a child nominally outlive
// its parent; clamping keeps self times additive-ish rather than negative.
void ComputeSelf(const std::vector<Profiler::PathNode>& nodes, std::vector<int64_t>& sim_self,
                 std::vector<int64_t>& wall_self) {
  sim_self.resize(nodes.size());
  wall_self.resize(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    sim_self[i] = nodes[i].sim_total_nanos;
    wall_self[i] = nodes[i].wall_total_nanos;
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].parent >= 0) {
      sim_self[nodes[i].parent] -= nodes[i].sim_total_nanos;
      wall_self[nodes[i].parent] -= nodes[i].wall_total_nanos;
    }
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    sim_self[i] = ClampNonNegative(sim_self[i]);
    wall_self[i] = ClampNonNegative(wall_self[i]);
  }
}

}  // namespace

Profiler::Profiler(SimClockFn clock) : clock_(std::move(clock)) {
  FW_CHECK_MSG(clock_ != nullptr, "profiler needs a sim clock");
}

ProfScopeId Profiler::RegisterScope(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) {
    return it->second;
  }
  const ProfScopeId id = static_cast<ProfScopeId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

uint32_t Profiler::FindOrCreateNode(int32_t parent, ProfScopeId scope) {
  const auto key = std::make_pair(parent, scope);
  auto it = node_index_.find(key);
  if (it != node_index_.end()) {
    return it->second;
  }
  const uint32_t index = static_cast<uint32_t>(nodes_.size());
  PathNode node;
  node.scope = scope;
  node.parent = parent;
  nodes_.push_back(node);
  node_index_.emplace(key, index);
  return index;
}

uint64_t Profiler::EnterFrame(ProfScopeId scope, bool detached) {
  if (!enabled_) {
    return 0;
  }
  FW_CHECK_MSG(scope < names_.size(), "unregistered profiler scope");
  int32_t parent = -1;
  if (!detached) {
    // Innermost open *attached* frame; detached frames never become parents,
    // so scopes from events interleaved into an await window stay rooted at
    // their true (synchronous) context.
    for (size_t i = open_.size(); i > 0; --i) {
      if (!open_[i - 1].detached) {
        parent = static_cast<int32_t>(open_[i - 1].node);
        break;
      }
    }
  }
  Frame frame;
  frame.token = next_token_++;
  frame.node = FindOrCreateNode(parent, scope);
  frame.detached = detached;
  frame.sim_start = clock_();
  frame.wall_start_nanos = detached ? 0 : WallNanos();
  open_.push_back(frame);
  return frame.token;
}

uint64_t Profiler::Enter(ProfScopeId scope) { return EnterFrame(scope, /*detached=*/false); }

uint64_t Profiler::EnterDetached(ProfScopeId scope) { return EnterFrame(scope, /*detached=*/true); }

void Profiler::Exit(uint64_t token) {
  if (token == 0) {
    return;  // Profiler was disabled when the scope opened.
  }
  // Scopes usually close LIFO; coroutine interleaving makes mid-stack exits
  // legal, same as Tracer::EndSpan.
  for (size_t i = open_.size(); i > 0; --i) {
    if (open_[i - 1].token != token) {
      continue;
    }
    const Frame frame = open_[i - 1];
    open_.erase(open_.begin() + static_cast<ptrdiff_t>(i - 1));
    PathNode& node = nodes_[frame.node];
    node.calls += 1;
    node.sim_total_nanos += (clock_() - frame.sim_start).nanos();
    if (!frame.detached) {
      node.wall_total_nanos += WallNanos() - frame.wall_start_nanos;
    }
    return;
  }
  // Token from before a Reset(): nothing to close.
}

std::vector<Profiler::ScopeTotals> Profiler::Totals() const {
  std::vector<int64_t> sim_self;
  std::vector<int64_t> wall_self;
  ComputeSelf(nodes_, sim_self, wall_self);
  std::map<std::string, ScopeTotals> by_name;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const PathNode& node = nodes_[i];
    ScopeTotals& totals = by_name[names_[node.scope]];
    totals.name = names_[node.scope];
    totals.calls += node.calls;
    totals.sim_total_nanos += node.sim_total_nanos;
    totals.wall_total_nanos += node.wall_total_nanos;
    totals.sim_self_nanos += sim_self[i];
    totals.wall_self_nanos += wall_self[i];
  }
  std::vector<ScopeTotals> out;
  out.reserve(by_name.size());
  for (auto& [name, totals] : by_name) {
    out.push_back(totals);
  }
  return out;
}

std::vector<Profiler::ScopeTotals> Profiler::TopN(size_t n) const {
  std::vector<ScopeTotals> totals = Totals();
  std::stable_sort(totals.begin(), totals.end(), [](const ScopeTotals& a, const ScopeTotals& b) {
    const int64_t hot_a = std::max(a.wall_self_nanos, a.sim_self_nanos);
    const int64_t hot_b = std::max(b.wall_self_nanos, b.sim_self_nanos);
    if (hot_a != hot_b) {
      return hot_a > hot_b;
    }
    return a.name < b.name;
  });
  if (totals.size() > n) {
    totals.resize(n);
  }
  return totals;
}

void Profiler::Merge(const Profiler& other) {
  // other.nodes_ is in creation order, so a node's parent always precedes it
  // and node_map is filled before it is read.
  std::vector<uint32_t> node_map(other.nodes_.size());
  for (size_t i = 0; i < other.nodes_.size(); ++i) {
    const PathNode& theirs = other.nodes_[i];
    const ProfScopeId scope = RegisterScope(other.names_[theirs.scope]);
    const int32_t parent =
        theirs.parent < 0 ? -1 : static_cast<int32_t>(node_map[static_cast<size_t>(theirs.parent)]);
    const uint32_t index = FindOrCreateNode(parent, scope);
    node_map[i] = index;
    nodes_[index].calls += theirs.calls;
    nodes_[index].sim_total_nanos += theirs.sim_total_nanos;
    nodes_[index].wall_total_nanos += theirs.wall_total_nanos;
  }
}

void Profiler::Reset() {
  nodes_.clear();
  node_index_.clear();
  open_.clear();
}

}  // namespace fwobs
