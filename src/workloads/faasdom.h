// FaaSdom micro-benchmark suite (Table 2, §5.2): two compute-intensive
// functions (integer factorisation, large-matrix multiplication) and two
// I/O-intensive functions (disk I/O, network latency), each available in
// Node.js and Python.
//
// Workload shapes are chosen so the runtime models reproduce the paper's
// qualitative JIT behaviour:
//   * faas-fact / faas-matrix-mult call their kernel repeatedly, so V8 tiers
//     up partway through a cold execution (modest exec gains for Node.js,
//     §5.2.1) while CPython never does (huge post-JIT gains, §5.2.2);
//   * faas-diskio interleaves tiny compute with 100 × 10 KB read+write pairs,
//     so execution time is dominated by the sandbox's I/O path and JIT gains
//     are marginal (§5.2.1(2));
//   * faas-netlatency responds immediately (79-byte body + 500-byte header)
//     and measures pure start-up/response path (§5.2.1(3)).
#ifndef FIREWORKS_SRC_WORKLOADS_FAASDOM_H_
#define FIREWORKS_SRC_WORKLOADS_FAASDOM_H_

#include <string>
#include <vector>

#include "src/lang/function_ir.h"

namespace fwwork {

enum class FaasdomBench { kFact, kMatrixMult, kDiskIo, kNetLatency };

const char* FaasdomBenchName(FaasdomBench bench);
std::vector<FaasdomBench> AllFaasdomBenches();
bool IsComputeIntensive(FaasdomBench bench);

// Builds the benchmark function for the given language. Function names are
// "faas-<bench>-<language>".
fwlang::FunctionSource MakeFaasdom(FaasdomBench bench, fwlang::Language language);

}  // namespace fwwork

#endif  // FIREWORKS_SRC_WORKLOADS_FAASDOM_H_
