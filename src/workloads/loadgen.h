// Open-loop, seeded load generation for cluster-scale experiments.
//
// Serverless density claims only become decision-relevant under realistic
// arrival processes (Azure Functions traces: heavy-tailed app popularity,
// bursty and diurnal arrival rates). LoadGen produces a deterministic stream
// of (arrival offset, app index) pairs from three arrival models:
//
//   * kPoisson — homogeneous Poisson process at `rate_per_sec`;
//   * kBursty  — a two-state Markov-modulated Poisson process (MMPP-2) that
//     alternates between calm and burst states, normalised so the long-run
//     mean rate still equals `rate_per_sec`;
//   * kDiurnal — a non-homogeneous Poisson process with sinusoidal rate
//     modulation (compressed day/night cycle), sampled by thinning.
//   * kDiurnalFlash — the diurnal curve with periodic flash-crowd windows
//     layered on top (rate multiplied by flash_multiplier inside each
//     window), the elastic-fleet stress trace: slow swings the capacity
//     autoscaler should track plus spikes it must absorb.
//
// App popularity is Zipf-distributed (app 0 is the hottest), matching the
// skew observed in production FaaS traces. Every draw comes from explicitly
// forked RNG streams, so a LoadGen with the same config replays the exact
// same arrival sequence.
#ifndef FIREWORKS_SRC_WORKLOADS_LOADGEN_H_
#define FIREWORKS_SRC_WORKLOADS_LOADGEN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/base/units.h"

namespace fwwork {

enum class ArrivalProcess { kPoisson, kBursty, kDiurnal, kDiurnalFlash };

const char* ArrivalProcessName(ArrivalProcess process);
std::optional<ArrivalProcess> ParseArrivalProcess(const std::string& name);

struct LoadGenConfig {
  LoadGenConfig() {}

  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  // Long-run mean arrival rate across the whole cluster, in requests/sec.
  double rate_per_sec = 1000.0;

  // MMPP-2 (kBursty): the burst state multiplies the calm-state rate; state
  // holding times are exponential with these means. The calm rate is derived
  // so the time-weighted mean rate equals rate_per_sec.
  double burst_multiplier = 8.0;
  double mean_burst_seconds = 2.0;
  double mean_calm_seconds = 18.0;

  // kDiurnal: rate(t) = rate_per_sec * (1 + amplitude * sin(2*pi*t/period)).
  // Amplitude must be in [0, 1]. The default period compresses a day into
  // six simulated minutes so benches see several cycles.
  double diurnal_period_seconds = 360.0;
  double diurnal_amplitude = 0.8;

  // kDiurnalFlash: every flash_interval_seconds (measured from
  // flash_offset_seconds), the diurnal rate is multiplied by
  // flash_multiplier for flash_duration_seconds — a compressed flash crowd
  // (product launch, breaking news) on top of the daily cycle.
  double flash_multiplier = 3.0;
  double flash_interval_seconds = 120.0;
  double flash_duration_seconds = 10.0;
  double flash_offset_seconds = 45.0;

  // App popularity: Zipf over `num_apps` apps with the given exponent
  // (s = 1.1 approximates the Azure Functions skew; app 0 is hottest).
  int num_apps = 64;
  double zipf_exponent = 1.1;

  uint64_t seed = 42;
};

struct Arrival {
  Arrival() {}

  // Offset from the generator's start (t = 0); non-decreasing across calls.
  fwbase::Duration offset;
  // App index in [0, num_apps).
  int app = 0;
};

class LoadGen {
 public:
  explicit LoadGen(const LoadGenConfig& config);

  // The next arrival in the stream. Offsets are non-decreasing.
  Arrival Next();

  // Expected fraction of arrivals that target `app` (the Zipf pmf).
  double AppProbability(int app) const;

  const LoadGenConfig& config() const { return config_; }

 private:
  double NextInterarrivalSeconds();
  int SampleApp();

  LoadGenConfig config_;
  fwbase::Rng arrival_rng_;
  fwbase::Rng app_rng_;
  double now_seconds_ = 0.0;
  // MMPP-2 state.
  bool in_burst_ = false;
  double calm_rate_ = 0.0;
  double burst_rate_ = 0.0;
  // Zipf cumulative weights (unnormalised); total is zipf_cdf_.back().
  std::vector<double> zipf_cdf_;
};

}  // namespace fwwork

#endif  // FIREWORKS_SRC_WORKLOADS_LOADGEN_H_
