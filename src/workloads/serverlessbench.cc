#include "src/workloads/serverlessbench.h"

#include "src/base/check.h"
#include "src/base/units.h"

namespace fwwork {

using fwbase::kKiB;
using fwbase::kMiB;
using fwlang::FunctionSource;
using fwlang::Language;
using fwlang::MethodDef;
using fwlang::Op;

const std::vector<std::string>& ChainApp::Chain(const std::string& chain_name) const {
  auto it = chains.find(chain_name);
  FW_CHECK_MSG(it != chains.end(), ("no chain " + chain_name + " in app " + name).c_str());
  return it->second;
}

namespace {

FunctionSource NodeFn(std::string name, std::vector<MethodDef> methods,
                      uint64_t package_bytes) {
  return FunctionSource(std::move(name), Language::kNodeJs, std::move(methods), "main",
                        package_bytes);
}

}  // namespace

ChainApp MakeAlexaSkills() {
  std::vector<FunctionSource> functions;

  // Voice-intent analysis: tokenize + classify the transcribed request.
  {
    std::vector<MethodDef> methods;
    methods.emplace_back("tokenize", std::vector<Op>{Op::Compute(140'000, /*friendliness=*/0.97)}, 2 * kKiB);
    methods.emplace_back("classify_intent",
                         std::vector<Op>{Op::Compute(380'000, /*friendliness=*/0.97), Op::AllocHeap(1 * kMiB)},
                         3 * kKiB);
    methods.emplace_back(
        "main",
        std::vector<Op>{Op::Call("tokenize", 4), Op::Call("classify_intent", 1),
                        Op::NetSend(350)},
        1 * kKiB);
    functions.push_back(NodeFn("alexa-frontend", std::move(methods), 5 * kMiB));
  }
  // Fact skill: answer simple common sense.
  {
    std::vector<MethodDef> methods;
    methods.emplace_back("pick_fact", std::vector<Op>{Op::Compute(95'000, /*friendliness=*/0.97)}, 1 * kKiB);
    methods.emplace_back("main",
                         std::vector<Op>{Op::Call("pick_fact", 3), Op::NetSend(420)},
                         1 * kKiB);
    functions.push_back(NodeFn("alexa-fact", std::move(methods), 3 * kMiB));
  }
  // Reminder skill: search/enter schedules in CouchDB (item, place, URL).
  {
    std::vector<MethodDef> methods;
    methods.emplace_back("load_schedule",
                         std::vector<Op>{Op::DbGet("reminders", "schedule"),
                                         Op::Compute(70'000, /*friendliness=*/0.97)},
                         2 * kKiB);
    methods.emplace_back("store_entry",
                         std::vector<Op>{Op::Compute(60'000, /*friendliness=*/0.97), Op::DbPut("reminders", 640)},
                         2 * kKiB);
    methods.emplace_back(
        "main",
        std::vector<Op>{Op::Call("load_schedule", 1), Op::Call("store_entry", 1),
                        Op::AllocHeap(512 * kKiB), Op::NetSend(460)},
        1 * kKiB);
    functions.push_back(NodeFn("alexa-reminder", std::move(methods), 4 * kMiB));
  }
  // Smart-home skill: report on/off status of light, door, TV.
  {
    std::vector<MethodDef> methods;
    methods.emplace_back("query_device",
                         std::vector<Op>{Op::DbGet("devices", "state"), Op::Compute(50'000, /*friendliness=*/0.97)},
                         2 * kKiB);
    methods.emplace_back(
        "main",
        std::vector<Op>{Op::Call("query_device", 3), Op::Compute(110'000, /*friendliness=*/0.97), Op::NetSend(380)},
        1 * kKiB);
    functions.push_back(NodeFn("alexa-smarthome", std::move(methods), 4 * kMiB));
  }

  std::map<std::string, std::vector<std::string>> chains;
  chains["fact"] = {"alexa-frontend", "alexa-fact"};
  chains["reminder"] = {"alexa-frontend", "alexa-reminder"};
  chains["smarthome"] = {"alexa-frontend", "alexa-smarthome"};
  return ChainApp("alexa-skills", std::move(functions), std::move(chains));
}

ChainApp MakeDataAnalysis() {
  std::vector<FunctionSource> functions;

  // Validate incoming wage records (name, ID, role, base payment).
  {
    std::vector<MethodDef> methods;
    methods.emplace_back("validate", std::vector<Op>{Op::Compute(130'000, /*friendliness=*/0.97)}, 2 * kKiB);
    methods.emplace_back("main",
                         std::vector<Op>{Op::Call("validate", 5), Op::NetSend(280)},
                         1 * kKiB);
    functions.push_back(NodeFn("da-input-check", std::move(methods), 3 * kMiB));
  }
  // Reformat and insert into CouchDB.
  {
    std::vector<MethodDef> methods;
    methods.emplace_back("reformat",
                         std::vector<Op>{Op::Compute(180'000, /*friendliness=*/0.97), Op::AllocHeap(512 * kKiB)},
                         2 * kKiB);
    methods.emplace_back(
        "main",
        std::vector<Op>{Op::Call("reformat", 5), Op::DbPut("wages", 820), Op::NetSend(300)},
        1 * kKiB);
    functions.push_back(NodeFn("da-format", std::move(methods), 3 * kMiB));
  }
  // Analysis chain (DB-update triggered): bonuses, taxes, statistics.
  {
    std::vector<MethodDef> methods;
    methods.emplace_back("compute_bonus_tax",
                         std::vector<Op>{Op::Compute(230'000, /*friendliness=*/0.97), Op::AllocHeap(256 * kKiB)},
                         3 * kKiB);
    methods.emplace_back(
        "main",
        std::vector<Op>{Op::DbScan("wages"), Op::Call("compute_bonus_tax", 8),
                        Op::NetSend(320)},
        1 * kKiB);
    functions.push_back(NodeFn("da-analyze", std::move(methods), 4 * kMiB));
  }
  {
    std::vector<MethodDef> methods;
    methods.emplace_back("aggregate", std::vector<Op>{Op::Compute(160'000, /*friendliness=*/0.97)}, 2 * kKiB);
    methods.emplace_back(
        "main",
        std::vector<Op>{Op::Call("aggregate", 4), Op::DbPut("wage-stats", 540),
                        Op::NetSend(290)},
        1 * kKiB);
    functions.push_back(NodeFn("da-stats", std::move(methods), 3 * kMiB));
  }

  std::map<std::string, std::vector<std::string>> chains;
  chains["insert"] = {"da-input-check", "da-format"};
  chains["analysis"] = {"da-analyze", "da-stats"};
  ChainApp app("data-analysis", std::move(functions), std::move(chains));
  app.trigger_db = "wages";
  app.trigger_chain = "analysis";
  return app;
}

}  // namespace fwwork
