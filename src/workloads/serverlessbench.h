// ServerlessBench real-world applications (Table 2, §5.3, Fig 8): the two
// Node.js applications the paper evaluates, each a chain of serverless
// functions interacting through pipes and CouchDB.
//
// Alexa Skills (Fig 8(a)): a frontend performs voice-intent analysis, then
// dispatches to one of three skills — fact (answers trivia), reminder (reads/
// writes schedules in CouchDB), smart home (reports device on/off state).
// Invocations carry varied argument shapes (door passwords, schedule
// details), the paper's worst case for JITted code (de-optimisation, §6).
//
// Data analysis (Fig 8(b)): wage records are validated and formatted into
// CouchDB; a database-update trigger launches the analysis chain, which scans
// the records, computes bonuses/taxes, and stores statistics.
#ifndef FIREWORKS_SRC_WORKLOADS_SERVERLESSBENCH_H_
#define FIREWORKS_SRC_WORKLOADS_SERVERLESSBENCH_H_

#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "src/lang/function_ir.h"

namespace fwwork {

struct ChainApp {
  ChainApp() = default;
  ChainApp(std::string name, std::vector<fwlang::FunctionSource> functions,
           std::map<std::string, std::vector<std::string>> chains)
      : name(std::move(name)), functions(std::move(functions)), chains(std::move(chains)) {}

  // Function names of one named chain, in invocation order.
  const std::vector<std::string>& Chain(const std::string& chain_name) const;

  std::string name;
  std::vector<fwlang::FunctionSource> functions;
  // chain name → ordered function names.
  std::map<std::string, std::vector<std::string>> chains;
  // Name of the database whose updates trigger `trigger_chain` (empty: none).
  std::string trigger_db;
  std::string trigger_chain;
};
static_assert(!std::is_aggregate_v<ChainApp>);

// Alexa Skills: chains "fact", "reminder", "smarthome" (each frontend→skill).
ChainApp MakeAlexaSkills();

// Data analysis: chain "insert" (input-check → format-and-store); DB updates
// on "wages" trigger chain "analysis" (analyze → stats).
ChainApp MakeDataAnalysis();

}  // namespace fwwork

#endif  // FIREWORKS_SRC_WORKLOADS_SERVERLESSBENCH_H_
