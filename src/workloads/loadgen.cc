#include "src/workloads/loadgen.h"

#include <cmath>

#include "src/base/check.h"

namespace fwwork {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

const char* ArrivalProcessName(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kBursty:
      return "bursty";
    case ArrivalProcess::kDiurnal:
      return "diurnal";
    case ArrivalProcess::kDiurnalFlash:
      return "diurnal-flash";
  }
  return "unknown";
}

std::optional<ArrivalProcess> ParseArrivalProcess(const std::string& name) {
  if (name == "poisson") {
    return ArrivalProcess::kPoisson;
  }
  if (name == "bursty") {
    return ArrivalProcess::kBursty;
  }
  if (name == "diurnal") {
    return ArrivalProcess::kDiurnal;
  }
  if (name == "diurnal-flash") {
    return ArrivalProcess::kDiurnalFlash;
  }
  return std::nullopt;
}

LoadGen::LoadGen(const LoadGenConfig& config)
    : config_(config),
      // Independent streams: the arrival process never perturbs app sampling.
      arrival_rng_(config.seed * 0x9E3779B97F4A7C15ull + 1),
      app_rng_(config.seed * 0x9E3779B97F4A7C15ull + 2) {
  FW_CHECK(config_.rate_per_sec > 0.0);
  FW_CHECK(config_.num_apps > 0);
  FW_CHECK(config_.burst_multiplier >= 1.0);
  FW_CHECK(config_.mean_burst_seconds > 0.0 && config_.mean_calm_seconds > 0.0);
  FW_CHECK(config_.diurnal_amplitude >= 0.0 && config_.diurnal_amplitude <= 1.0);
  FW_CHECK(config_.diurnal_period_seconds > 0.0);
  FW_CHECK(config_.flash_multiplier >= 1.0);
  FW_CHECK(config_.flash_interval_seconds > 0.0);
  FW_CHECK(config_.flash_duration_seconds >= 0.0 &&
           config_.flash_duration_seconds <= config_.flash_interval_seconds);
  FW_CHECK(config_.flash_offset_seconds >= 0.0);

  // MMPP-2 normalisation: with burst-state fraction p_b, the long-run mean is
  // calm_rate * ((1 - p_b) + multiplier * p_b) — solve for calm_rate.
  const double p_burst =
      config_.mean_burst_seconds / (config_.mean_burst_seconds + config_.mean_calm_seconds);
  calm_rate_ =
      config_.rate_per_sec / ((1.0 - p_burst) + config_.burst_multiplier * p_burst);
  burst_rate_ = calm_rate_ * config_.burst_multiplier;

  zipf_cdf_.reserve(config_.num_apps);
  double total = 0.0;
  for (int k = 0; k < config_.num_apps; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), config_.zipf_exponent);
    zipf_cdf_.push_back(total);
  }
}

double LoadGen::NextInterarrivalSeconds() {
  switch (config_.arrival) {
    case ArrivalProcess::kPoisson:
      return arrival_rng_.Exponential(1.0 / config_.rate_per_sec);

    case ArrivalProcess::kBursty: {
      // Competing exponentials: the state holding time is memoryless, so
      // redrawing the residual after each event is exact.
      double waited = 0.0;
      while (true) {
        const double rate = in_burst_ ? burst_rate_ : calm_rate_;
        const double mean_hold =
            in_burst_ ? config_.mean_burst_seconds : config_.mean_calm_seconds;
        const double to_arrival = arrival_rng_.Exponential(1.0 / rate);
        const double to_switch = arrival_rng_.Exponential(mean_hold);
        if (to_arrival <= to_switch) {
          return waited + to_arrival;
        }
        waited += to_switch;
        in_burst_ = !in_burst_;
      }
    }

    case ArrivalProcess::kDiurnal:
    case ArrivalProcess::kDiurnalFlash: {
      // Thinning (Lewis & Shedler): draw candidates at the peak rate, accept
      // with probability rate(t) / peak. For kDiurnalFlash the envelope must
      // cover the flash windows too, so the peak scales by the multiplier.
      const bool flash = config_.arrival == ArrivalProcess::kDiurnalFlash;
      const double peak = config_.rate_per_sec * (1.0 + config_.diurnal_amplitude) *
                          (flash ? config_.flash_multiplier : 1.0);
      double waited = 0.0;
      while (true) {
        waited += arrival_rng_.Exponential(1.0 / peak);
        const double t = now_seconds_ + waited;
        double rate =
            config_.rate_per_sec *
            (1.0 + config_.diurnal_amplitude *
                       std::sin(2.0 * kPi * t / config_.diurnal_period_seconds));
        if (flash && t >= config_.flash_offset_seconds &&
            std::fmod(t - config_.flash_offset_seconds,
                      config_.flash_interval_seconds) < config_.flash_duration_seconds) {
          rate *= config_.flash_multiplier;
        }
        if (arrival_rng_.UniformDouble() * peak < rate) {
          return waited;
        }
      }
    }
  }
  FW_CHECK_MSG(false, "unreachable arrival process");
  return 0.0;
}

int LoadGen::SampleApp() {
  const double u = app_rng_.UniformDouble() * zipf_cdf_.back();
  // Binary search the cumulative weights.
  int lo = 0;
  int hi = static_cast<int>(zipf_cdf_.size()) - 1;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (zipf_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Arrival LoadGen::Next() {
  now_seconds_ += NextInterarrivalSeconds();
  Arrival a;
  a.offset = fwbase::Duration::Nanos(static_cast<int64_t>(now_seconds_ * 1e9));
  a.app = SampleApp();
  return a;
}

double LoadGen::AppProbability(int app) const {
  FW_CHECK(app >= 0 && app < config_.num_apps);
  const double w = 1.0 / std::pow(static_cast<double>(app + 1), config_.zipf_exponent);
  return w / zipf_cdf_.back();
}

}  // namespace fwwork
