#include "src/workloads/faasdom.h"

#include <string>

#include "src/base/check.h"
#include "src/base/units.h"

namespace fwwork {

using fwbase::kKiB;
using fwbase::kMiB;
using fwlang::FunctionSource;
using fwlang::Language;
using fwlang::MethodDef;
using fwlang::Op;

const char* FaasdomBenchName(FaasdomBench bench) {
  switch (bench) {
    case FaasdomBench::kFact:
      return "fact";
    case FaasdomBench::kMatrixMult:
      return "matrix-mult";
    case FaasdomBench::kDiskIo:
      return "diskio";
    case FaasdomBench::kNetLatency:
      return "netlatency";
  }
  return "?";
}

std::vector<FaasdomBench> AllFaasdomBenches() {
  return {FaasdomBench::kFact, FaasdomBench::kMatrixMult, FaasdomBench::kDiskIo,
          FaasdomBench::kNetLatency};
}

bool IsComputeIntensive(FaasdomBench bench) {
  return bench == FaasdomBench::kFact || bench == FaasdomBench::kMatrixMult;
}

FunctionSource MakeFaasdom(FaasdomBench bench, Language language) {
  const std::string name = std::string("faas-") + FaasdomBenchName(bench) + "-" +
                           fwlang::LanguageName(language);
  std::vector<MethodDef> methods;
  switch (bench) {
    case FaasdomBench::kFact: {
      // Integer factorisation of many inputs: 100 kernel calls, allocation
      // churn from big-integer temporaries.
      methods.emplace_back(
          "factorize",
          std::vector<Op>{Op::Compute(300'000, /*friendliness=*/0.97),
                          Op::AllocHeap(448 * kKiB)},
          /*code_bytes=*/2 * kKiB);
      methods.emplace_back(
          "main",
          std::vector<Op>{Op::Call("factorize", 100), Op::AllocHeap(6 * kMiB),
                          Op::NetSend(579)},
          /*code_bytes=*/1 * kKiB);
      break;
    }
    case FaasdomBench::kMatrixMult: {
      // Fewer, larger kernels; big matrix buffers.
      methods.emplace_back(
          "multiply",
          std::vector<Op>{Op::Compute(600'000, /*friendliness=*/0.999),
                          Op::AllocHeap(128 * kKiB)},
          /*code_bytes=*/3 * kKiB);
      methods.emplace_back(
          "main",
          std::vector<Op>{Op::Call("multiply", 60), Op::AllocHeap(8 * kMiB), Op::NetSend(579)},
          /*code_bytes=*/1 * kKiB);
      break;
    }
    case FaasdomBench::kDiskIo: {
      // 10 KB file read + write, 100 times, with a small checksum per pair
      // (§5.2.1(2)). Execution is dominated by the sandbox I/O path.
      methods.emplace_back(
          "io_pair",
          std::vector<Op>{Op::DiskRead(10 * kKiB), Op::DiskWrite(10 * kKiB),
                          Op::Compute(1'500, /*friendliness=*/0.9)},
          /*code_bytes=*/1 * kKiB);
      methods.emplace_back(
          "main",
          std::vector<Op>{Op::Call("io_pair", 100), Op::AllocHeap(1 * kMiB), Op::NetSend(579)},
          /*code_bytes=*/1 * kKiB);
      break;
    }
    case FaasdomBench::kNetLatency: {
      // Respond immediately: 79-byte body + 500-byte header.
      methods.emplace_back("main", std::vector<Op>{Op::Compute(300), Op::NetSend(579)},
                           /*code_bytes=*/512);
      break;
    }
  }
  const uint64_t package_bytes = language == Language::kNodeJs ? 2 * kMiB : 1 * kMiB;
  return FunctionSource(name, language, std::move(methods), "main", package_bytes);
}

}  // namespace fwwork
