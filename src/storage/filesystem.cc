#include "src/storage/filesystem.h"

namespace fwstore {

const char* FsKindName(FsKind kind) {
  switch (kind) {
    case FsKind::kHostDirect:
      return "host";
    case FsKind::kOverlayFs:
      return "overlayfs";
    case FsKind::kVirtio:
      return "virtio";
    case FsKind::kP9fs:
      return "9p";
    case FsKind::kGofer:
      return "gofer";
  }
  return "?";
}

Filesystem::Config Filesystem::ConfigFor(FsKind kind) {
  // Per-op path costs loosely calibrated from the gVisor performance guide
  // and Firecracker's block-device documentation: direct syscalls are a few
  // microseconds; overlay adds dentry indirection; a paravirtual exit adds
  // tens of microseconds; Sentry+Gofer adds two extra process hops per op.
  switch (kind) {
    case FsKind::kHostDirect:
      return Config{Duration::Micros(4), 1.0};
    case FsKind::kOverlayFs:
      return Config{Duration::Micros(7), 0.95};
    case FsKind::kVirtio:
      return Config{Duration::Micros(30), 0.80};
    case FsKind::kP9fs:
      return Config{Duration::Micros(45), 0.70};
    case FsKind::kGofer:
      // Sentry syscall interception + RPC to the Gofer per file operation.
      return Config{Duration::Micros(620), 0.35};
  }
  return Config{Duration::Micros(4), 1.0};
}

Filesystem::Filesystem(fwsim::Simulation& sim, BlockDevice& device, FsKind kind)
    : sim_(sim), device_(device), kind_(kind), config_(ConfigFor(kind)) {}

fwsim::Co<void> Filesystem::ReadFile(uint64_t bytes) {
  ++ops_;
  co_await fwsim::Delay(sim_, config_.per_op_overhead);
  // Bandwidth degradation is modelled as inflating the transferred size.
  co_await device_.Read(static_cast<uint64_t>(static_cast<double>(bytes) /
                                              config_.bandwidth_scale));
}

fwsim::Co<void> Filesystem::WriteFile(uint64_t bytes) {
  ++ops_;
  co_await fwsim::Delay(sim_, config_.per_op_overhead);
  co_await device_.Write(static_cast<uint64_t>(static_cast<double>(bytes) /
                                               config_.bandwidth_scale));
}

}  // namespace fwstore
