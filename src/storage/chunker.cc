#include "src/storage/chunker.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/base/strings.h"

namespace fwstore {

namespace {

uint64_t Fnv1a(const uint8_t* data, size_t len, uint64_t h) {
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;  // FNV prime.
  }
  return h;
}

uint64_t Finalize(uint64_t h) {
  // Murmur3 finalizer: restores avalanche that FNV-1a lacks on short inputs.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

// Gear table: one 64-bit constant per byte value, derived with SplitMix64 so
// the table is identical on every build without storing 2 KiB of literals.
const uint64_t* GearTable() {
  static const auto table = [] {
    static uint64_t t[256];
    uint64_t state = 0x46697265776f726bull;  // "Firework"
    for (int i = 0; i < 256; ++i) {
      state += 0x9E3779B97F4A7C15ull;
      uint64_t z = state;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      t[i] = z ^ (z >> 31);
    }
    return t;
  }();
  return table;
}

}  // namespace

uint64_t HashBytes(const uint8_t* data, size_t len) {
  return Finalize(Fnv1a(data, len, 0xcbf29ce484222325ull));
}

uint64_t HashBytes(const std::string& bytes) {
  return HashBytes(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
}

Chunker::Chunker(const Config& config) : config_(config) {
  FW_CHECK(config.min_bytes > 0);
  FW_CHECK(config.min_bytes <= config.target_bytes);
  FW_CHECK(config.target_bytes <= config.max_bytes);
  FW_CHECK_MSG((config.target_bytes & (config.target_bytes - 1)) == 0,
               "target_bytes must be a power of two (it becomes the boundary mask)");
  mask_ = config.target_bytes - 1;
}

std::vector<Chunk> Chunker::Split(const uint8_t* data, size_t len) const {
  const uint64_t* gear = GearTable();
  std::vector<Chunk> chunks;
  uint64_t start = 0;
  while (start < len) {
    const uint64_t remaining = len - start;
    uint64_t cut = std::min<uint64_t>(remaining, config_.max_bytes);
    if (remaining > config_.min_bytes) {
      uint64_t h = 0;
      const uint64_t scan_end = std::min<uint64_t>(remaining, config_.max_bytes);
      for (uint64_t i = config_.min_bytes; i < scan_end; ++i) {
        h = (h << 1) + gear[data[start + i]];
        if ((h & mask_) == 0) {
          cut = i + 1;
          break;
        }
      }
    }
    Chunk c;
    c.offset = start;
    c.bytes = cut;
    c.digest = HashBytes(data + start, cut);
    chunks.push_back(c);
    start += cut;
  }
  return chunks;
}

std::vector<Chunk> Chunker::Split(const std::string& bytes) const {
  return Split(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
}

std::vector<ChunkRef> SyntheticChunks(const std::string& key, uint64_t total_bytes,
                                      uint64_t chunk_bytes) {
  FW_CHECK(chunk_bytes > 0);
  std::vector<ChunkRef> refs;
  const uint64_t key_hash = HashBytes(key);
  uint64_t offset = 0;
  uint64_t index = 0;
  while (offset < total_bytes) {
    const uint64_t bytes = std::min(chunk_bytes, total_bytes - offset);
    ChunkRef ref;
    ref.bytes = bytes;
    // Mix (key, index, size) through the finalizer: equal layers chunk to
    // equal digests on every host; distinct layers or sizes diverge.
    uint64_t h = key_hash ^ (0x9E3779B97F4A7C15ull * (index + 1)) ^ bytes;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    ref.digest = h;
    refs.push_back(ref);
    offset += bytes;
    ++index;
  }
  return refs;
}

}  // namespace fwstore
