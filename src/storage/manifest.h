// Snapshot manifest: the registry's unit of publication.
//
// A manifest describes one app's post-JIT snapshot as a stack of
// content-addressed layers — a base runtime layer shared by every app on the
// same runtime (kernel + guest OS + JIT runtime segments) plus a small
// per-app delta (the app's code, its JITted methods, its heap) — and carries
// the REAP working set: the guest pages a first invocation actually touched,
// persisted as page ranges so a restoring host can prefetch exactly those
// pages instead of the whole file (Ustiugov et al.).
//
// The wire format is fwlang JSON (ToJson/Parse round-trip byte-stably: keys
// are emitted sorted, numbers are integral).
#ifndef FIREWORKS_SRC_STORAGE_MANIFEST_H_
#define FIREWORKS_SRC_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/storage/chunker.h"

namespace fwstore {

// A run of guest pages [first, first + count), for working-set persistence.
struct PageRange {
  uint64_t first = 0;
  uint64_t count = 0;

  bool operator==(const PageRange& o) const {
    return first == o.first && count == o.count;
  }
};

enum class LayerKind { kBase, kDelta };

const char* LayerKindName(LayerKind kind);

// One content-addressed layer of a snapshot image. Layers with equal keys
// carry equal chunk lists (the shared-base dedup invariant).
struct LayerManifest {
  std::string key;  // e.g. "base/nodejs" (shared) or "delta/app-7" (per-app).
  LayerKind kind = LayerKind::kDelta;
  std::vector<ChunkRef> chunks;

  uint64_t bytes() const;
};

struct SnapshotManifest {
  std::string app;
  // Full restored image size (sum of layer bytes).
  uint64_t image_bytes = 0;
  std::vector<LayerManifest> layers;
  // Pages a first invocation touched from the image, as sorted ranges.
  std::vector<PageRange> working_set;
  uint64_t working_set_bytes = 0;

  uint64_t total_chunks() const;
  uint64_t working_set_pages() const;

  std::string ToJson() const;
  static fwbase::Result<SnapshotManifest> Parse(const std::string& text);
};

}  // namespace fwstore

#endif  // FIREWORKS_SRC_STORAGE_MANIFEST_H_
