#include "src/storage/document_db.h"

#include <utility>

namespace fwstore {

using fwbase::Result;
using fwbase::Status;

DocumentDb::DocumentDb(fwsim::Simulation& sim, Filesystem& fs)
    : DocumentDb(sim, fs, Config()) {}

DocumentDb::DocumentDb(fwsim::Simulation& sim, Filesystem& fs, const Config& config)
    : sim_(sim), fs_(fs), config_(config), update_feed_(sim) {}

fwsim::Co<Status> DocumentDb::Put(const std::string& db, Document doc) {
  ++puts_;
  co_await fwsim::Delay(sim_, config_.per_request_cost);
  co_await fs_.WriteFile(doc.SizeBytes());
  co_await fwsim::Delay(sim_, config_.changes_feed_cost);
  UpdateEvent event{db, doc};
  dbs_[db][doc.key] = std::move(doc);
  update_feed_.Send(std::move(event));
  co_return Status::Ok();
}

fwsim::Co<Result<Document>> DocumentDb::Get(const std::string& db, const std::string& key) {
  ++gets_;
  co_await fwsim::Delay(sim_, config_.per_request_cost);
  auto db_it = dbs_.find(db);
  if (db_it == dbs_.end()) {
    co_return Status::NotFound("no database " + db);
  }
  auto doc_it = db_it->second.find(key);
  if (doc_it == db_it->second.end()) {
    co_return Status::NotFound("no document " + key + " in " + db);
  }
  // Copy before suspending: a concurrent Delete of this document while
  // ReadFile runs erases the node doc_it points at. Runtime impact: one
  // Document copy per Get; the simulated read size and the returned value
  // (as of read start) are unchanged.
  Document doc = doc_it->second;
  co_await fs_.ReadFile(doc.SizeBytes());
  co_return doc;
}

fwsim::Co<std::vector<Document>> DocumentDb::Scan(const std::string& db) {
  co_await fwsim::Delay(sim_, config_.per_request_cost);
  std::vector<Document> out;
  auto db_it = dbs_.find(db);
  if (db_it == dbs_.end()) {
    co_return out;
  }
  uint64_t total_bytes = 0;
  for (const auto& [key, doc] : db_it->second) {
    out.push_back(doc);
    total_bytes += doc.SizeBytes();
  }
  if (total_bytes > 0) {
    co_await fs_.ReadFile(total_bytes);
  }
  co_return out;
}

fwsim::Co<Status> DocumentDb::Delete(const std::string& db, const std::string& key) {
  co_await fwsim::Delay(sim_, config_.per_request_cost);
  auto db_it = dbs_.find(db);
  if (db_it == dbs_.end() || db_it->second.erase(key) == 0) {
    co_return Status::NotFound("no document " + key + " in " + db);
  }
  co_return Status::Ok();
}

size_t DocumentDb::DocCount(const std::string& db) const {
  auto it = dbs_.find(db);
  return it == dbs_.end() ? 0 : it->second.size();
}

}  // namespace fwstore
