#include "src/storage/block_device.h"

#include "src/fault/fault.h"

namespace fwstore {

BlockDevice::BlockDevice(fwsim::Simulation& sim, const Config& config)
    : sim_(sim), config_(config), queue_(sim, config.parallelism) {}

Duration BlockDevice::ReadCost(uint64_t bytes) const {
  return config_.read_latency +
         Duration::SecondsF(static_cast<double>(bytes) / config_.read_bw_bytes_per_sec);
}

Duration BlockDevice::WriteCost(uint64_t bytes) const {
  return config_.write_latency +
         Duration::SecondsF(static_cast<double>(bytes) / config_.write_bw_bytes_per_sec);
}

fwsim::Co<void> BlockDevice::DoOp(Duration cost) {
  co_await queue_.Acquire();
  co_await fwsim::Delay(sim_, cost);
  queue_.Release();
}

fwsim::Co<void> BlockDevice::Read(uint64_t bytes) {
  bytes_read_ += bytes;
  ++read_ops_;
  co_await DoOp(ReadCost(bytes));
  // Media read errors are absorbed by the device retrying the op. Each retry
  // is a fresh injection opportunity; the cap keeps a plan with
  // probability ~1.0 from looping forever.
  int budget = 8;
  while (budget-- > 0 && injector_ != nullptr &&
         injector_->Trip(fwfault::FaultKind::kDiskReadError)) {
    ++io_retries_;
    co_await DoOp(ReadCost(bytes));
  }
}

fwsim::Co<void> BlockDevice::Write(uint64_t bytes) {
  bytes_written_ += bytes;
  ++write_ops_;
  co_await DoOp(WriteCost(bytes));
}

}  // namespace fwstore
