#include "src/storage/snapshot_store.h"

#include <utility>

#include "src/base/check.h"
#include "src/base/logging.h"
#include "src/fault/fault.h"

namespace fwstore {

SnapshotStore::SnapshotStore(fwsim::Simulation& sim, BlockDevice& device,
                             uint64_t capacity_bytes, EvictionPolicy policy)
    : sim_(sim), device_(device), capacity_bytes_(capacity_bytes), policy_(policy) {}

void SnapshotStore::set_observability(fwobs::Observability* obs) {
  hit_counter_ = &obs->metrics().GetCounter("store.snapshot.hit.count");
  miss_counter_ = &obs->metrics().GetCounter("store.snapshot.miss.count");
  evict_counter_ = &obs->metrics().GetCounter("store.snapshot.evict.count");
  save_counter_ = &obs->metrics().GetCounter("store.snapshot.save.count");
  corruption_counter_ = &obs->metrics().GetCounter("store.snapshot.corruption.count");
  used_bytes_gauge_ = &obs->metrics().GetGauge("store.snapshot.used_bytes");
}

bool SnapshotStore::EvictFor(uint64_t needed) {
  if (needed > capacity_bytes_) {
    return false;
  }
  while (used_bytes_ + needed > capacity_bytes_) {
    if (policy_ == EvictionPolicy::kNone) {
      return false;
    }
    // Find the first unpinned victim from the front of the order list.
    auto it = order_.begin();
    while (it != order_.end() && entries_.at(*it).pinned) {
      ++it;
    }
    if (it == order_.end()) {
      return false;
    }
    const std::string victim = *it;
    auto& entry = entries_.at(victim);
    used_bytes_ -= entry.image->file_bytes();
    order_.erase(entry.order_it);
    entries_.erase(victim);
    ++evictions_;
    if (evict_counter_ != nullptr) {
      evict_counter_->Increment();
      used_bytes_gauge_->Set(static_cast<double>(used_bytes_));
    }
    FW_LOG(kDebug) << "snapshot-store: evicted " << victim;
  }
  return true;
}

fwsim::Co<Status> SnapshotStore::Save(std::shared_ptr<fwmem::SnapshotImage> image) {
  const std::string name = image->name();
  if (entries_.count(name) != 0) {
    co_return Status::AlreadyExists("snapshot " + name + " already stored");
  }
  const uint64_t bytes = image->file_bytes();
  if (!EvictFor(bytes)) {
    co_return Status::ResourceExhausted("snapshot store full; cannot fit " + name);
  }
  // Pay the disk write for the memory file + a small vmstate file. The file
  // was just written, so its pages are warm in the host page cache.
  co_await device_.Write(bytes);
  if (injector_ != nullptr && injector_->Trip(fwfault::FaultKind::kDiskWriteError)) {
    co_return Status::Unavailable("snapshot store: write error persisting " + name);
  }
  image->set_cache_warm(true);
  order_.push_back(name);
  auto it = std::prev(order_.end());
  entries_.emplace(name, Entry{std::move(image), /*pinned=*/false, it});
  used_bytes_ += bytes;
  if (save_counter_ != nullptr) {
    save_counter_->Increment();
    used_bytes_gauge_->Set(static_cast<double>(used_bytes_));
  }
  co_return Status::Ok();
}

void SnapshotStore::TouchRecency(Entry& entry, const std::string& name) {
  if (policy_ != EvictionPolicy::kLru) {
    return;  // FIFO/none ignore access recency.
  }
  order_.erase(entry.order_it);
  order_.push_back(name);
  entry.order_it = std::prev(order_.end());
}

Result<std::shared_ptr<fwmem::SnapshotImage>> SnapshotStore::Get(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    ++misses_;
    if (miss_counter_ != nullptr) {
      miss_counter_->Increment();
    }
    return Status::NotFound("snapshot " + name + " not in store");
  }
  if (injector_ != nullptr && injector_->Trip(fwfault::FaultKind::kSnapshotCorruption)) {
    // Checksum mismatch: the on-disk file is garbage. Drop the entry so the
    // caller's re-install path can Save a fresh copy under the same name.
    if (corruption_counter_ != nullptr) {
      corruption_counter_->Increment();
    }
    used_bytes_ -= it->second.image->file_bytes();
    order_.erase(it->second.order_it);
    entries_.erase(it);
    if (used_bytes_gauge_ != nullptr) {
      used_bytes_gauge_->Set(static_cast<double>(used_bytes_));
    }
    return Status::DataLoss("snapshot " + name + " failed checksum verification");
  }
  ++hits_;
  if (hit_counter_ != nullptr) {
    hit_counter_->Increment();
  }
  TouchRecency(it->second, name);
  return it->second.image;
}

bool SnapshotStore::Contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

Status SnapshotStore::Pin(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("snapshot " + name + " not in store");
  }
  it->second.pinned = true;
  return Status::Ok();
}

Status SnapshotStore::Unpin(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("snapshot " + name + " not in store");
  }
  it->second.pinned = false;
  return Status::Ok();
}

Status SnapshotStore::Remove(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("snapshot " + name + " not in store");
  }
  used_bytes_ -= it->second.image->file_bytes();
  order_.erase(it->second.order_it);
  entries_.erase(it);
  if (used_bytes_gauge_ != nullptr) {
    used_bytes_gauge_->Set(static_cast<double>(used_bytes_));
  }
  return Status::Ok();
}

}  // namespace fwstore
