// SnapshotStore: on-disk home of VM snapshot files.
//
// §6 of the paper notes that with thousands of installed functions, snapshot
// files create disk-space pressure and suggests bounding the store with a
// replacement policy that keeps frequently-accessed snapshots. This store
// implements that suggestion: a byte-capacity budget with LRU (or FIFO, for
// the ablation bench) eviction of unpinned entries.
#ifndef FIREWORKS_SRC_STORAGE_SNAPSHOT_STORE_H_
#define FIREWORKS_SRC_STORAGE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/base/status.h"
#include "src/mem/address_space.h"
#include "src/obs/observability.h"
#include "src/storage/block_device.h"

namespace fwfault {
class FaultInjector;
}  // namespace fwfault

namespace fwstore {

using fwbase::Result;
using fwbase::Status;

class SnapshotStore {
 public:
  enum class EvictionPolicy { kNone, kLru, kFifo };

  SnapshotStore(fwsim::Simulation& sim, BlockDevice& device, uint64_t capacity_bytes,
                EvictionPolicy policy = EvictionPolicy::kLru);

  // Optional: mirror hit/miss/eviction/save accounting into "store.*" metrics.
  // The Observability must outlive the store.
  void set_observability(fwobs::Observability* obs);

  // Optional: inject write errors at Save (kUnavailable) and checksum
  // mismatches at Get (kDataLoss, entry dropped so callers can re-install).
  void set_fault_injector(fwfault::FaultInjector* injector) { injector_ = injector; }

  // Persists the image (paying the disk-write time for its file bytes),
  // evicting per policy if needed. Fails with kResourceExhausted when the
  // image cannot fit even after evicting everything unpinned.
  fwsim::Co<Status> Save(std::shared_ptr<fwmem::SnapshotImage> image);

  // Returns the image handle and refreshes recency. kNotFound if absent or
  // evicted (the caller must then re-install, i.e. re-create the snapshot).
  Result<std::shared_ptr<fwmem::SnapshotImage>> Get(const std::string& name);

  bool Contains(const std::string& name) const;
  // Pinned entries are never evicted (e.g. snapshots of currently-hot
  // functions).
  Status Pin(const std::string& name);
  Status Unpin(const std::string& name);
  Status Remove(const std::string& name);

  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::shared_ptr<fwmem::SnapshotImage> image;
    bool pinned = false;
    std::list<std::string>::iterator order_it;  // Position in order_ (front = next victim).
  };

  // Frees at least `needed` bytes; returns false if impossible.
  bool EvictFor(uint64_t needed);
  void TouchRecency(Entry& entry, const std::string& name);

  fwsim::Simulation& sim_;
  BlockDevice& device_;
  uint64_t capacity_bytes_;
  EvictionPolicy policy_;
  uint64_t used_bytes_ = 0;
  uint64_t evictions_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> order_;  // Eviction order, front is the next victim.
  fwobs::Counter* hit_counter_ = nullptr;
  fwobs::Counter* miss_counter_ = nullptr;
  fwobs::Counter* evict_counter_ = nullptr;
  fwobs::Counter* save_counter_ = nullptr;
  fwobs::Counter* corruption_counter_ = nullptr;
  fwobs::Gauge* used_bytes_gauge_ = nullptr;
  fwfault::FaultInjector* injector_ = nullptr;
};

}  // namespace fwstore

#endif  // FIREWORKS_SRC_STORAGE_SNAPSHOT_STORE_H_
