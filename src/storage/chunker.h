// Content-addressed snapshot chunking (the distribution tier's unit of
// transfer and dedup).
//
// Two producers share one digest space:
//
//   * Chunker — Gear-hash content-defined chunking over real bytes: boundaries
//     follow content, so an insertion early in a blob only re-chunks the
//     region around the edit instead of shifting every later boundary. Used
//     where actual snapshot bytes exist (tests, future on-disk images).
//   * SyntheticChunks — fixed-size chunk refs whose digests derive from a
//     layer key and chunk index. Simulated snapshot images carry no content,
//     but identical layers (the shared base runtime) must still produce
//     identical digests on every host so dedup and peer fetch work; deriving
//     the digest from (key, index, size) gives exactly that.
//
// Digests are FNV-1a with a murmur3-style finalizer (the same construction as
// fwcluster::HashKey): FNV alone barely diffuses short inputs' upper bits,
// and chunk digests feed ordered maps and cache keys everywhere.
#ifndef FIREWORKS_SRC_STORAGE_CHUNKER_H_
#define FIREWORKS_SRC_STORAGE_CHUNKER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fwstore {

// 64-bit content digest of an arbitrary byte string.
uint64_t HashBytes(const uint8_t* data, size_t len);
uint64_t HashBytes(const std::string& bytes);

// One chunk of a layer: content address + size. The digest is the identity —
// two refs with equal digests are assumed to carry equal bytes.
struct ChunkRef {
  uint64_t digest = 0;
  uint64_t bytes = 0;

  bool operator==(const ChunkRef& o) const {
    return digest == o.digest && bytes == o.bytes;
  }
};

// A chunk located inside the blob it was cut from (offset + ref).
struct Chunk {
  uint64_t offset = 0;
  uint64_t bytes = 0;
  uint64_t digest = 0;

  ChunkRef ref() const { return ChunkRef{digest, bytes}; }
};

class Chunker {
 public:
  struct Config {
    Config() {}

    // Boundary discipline: no chunk smaller than min (except the final one),
    // none larger than max; target must be a power of two (it becomes the
    // boundary mask).
    uint64_t min_bytes = 16ull << 10;
    uint64_t target_bytes = 64ull << 10;
    uint64_t max_bytes = 256ull << 10;
  };

  explicit Chunker(const Config& config);

  // Cuts `data` into contiguous chunks: offsets tile [0, len) exactly, so
  // concatenating the slices reassembles the input bit-identically.
  std::vector<Chunk> Split(const uint8_t* data, size_t len) const;
  std::vector<Chunk> Split(const std::string& bytes) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
  uint64_t mask_;
};

// Deterministic chunk refs for a content-less simulated layer: `total_bytes`
// of layer `key` cut into fixed `chunk_bytes` pieces (last chunk takes the
// remainder). Digest = f(key, index, size): equal layers agree everywhere,
// distinct layers collide nowhere (modulo 64-bit hash collisions).
std::vector<ChunkRef> SyntheticChunks(const std::string& key, uint64_t total_bytes,
                                      uint64_t chunk_bytes);

}  // namespace fwstore

#endif  // FIREWORKS_SRC_STORAGE_CHUNKER_H_
