// DocumentDb: a CouchDB-like document store with update triggers.
//
// Both ServerlessBench applications depend on it: Alexa's reminder skill reads
// and writes schedule documents, and the data-analysis application's analysis
// chain is *triggered by database updates* (Fig. 8(b), dashed box). The update
// feed is exposed as a channel the platform can consume to launch trigger
// chains, mirroring the Cloud-trigger component of Fig. 1.
#ifndef FIREWORKS_SRC_STORAGE_DOCUMENT_DB_H_
#define FIREWORKS_SRC_STORAGE_DOCUMENT_DB_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>
#include <type_traits>

#include "src/base/status.h"
#include "src/simcore/primitives.h"
#include "src/storage/filesystem.h"

namespace fwstore {

struct Document {
  // Declared constructors keep Document non-aggregate: it crosses coroutine
  // boundaries by value (see the toolchain constraint note in simcore/coro.h).
  Document() = default;
  Document(std::string key, std::string body) : key(std::move(key)), body(std::move(body)) {}

  std::string key;
  std::string body;  // Serialized JSON payload.

  uint64_t SizeBytes() const { return key.size() + body.size(); }
};
static_assert(!std::is_aggregate_v<Document>);

struct UpdateEvent {
  UpdateEvent() = default;
  UpdateEvent(std::string db, Document doc) : db(std::move(db)), doc(std::move(doc)) {}

  std::string db;
  Document doc;
};
static_assert(!std::is_aggregate_v<UpdateEvent>);

class DocumentDb {
 public:
  struct Config {
    // Server-side request processing (auth, JSON parse, B-tree update).
    Duration per_request_cost = Duration::Micros(350);
    // Extra cost to append to the _changes feed on writes.
    Duration changes_feed_cost = Duration::Micros(60);
  };

  DocumentDb(fwsim::Simulation& sim, Filesystem& fs);
  DocumentDb(fwsim::Simulation& sim, Filesystem& fs, const Config& config);

  // Inserts/updates a document; emits an UpdateEvent on the feed.
  fwsim::Co<fwbase::Status> Put(const std::string& db, Document doc);
  fwsim::Co<fwbase::Result<Document>> Get(const std::string& db, const std::string& key);
  // Returns all documents of a database (the analysis stage's full scan).
  fwsim::Co<std::vector<Document>> Scan(const std::string& db);
  fwsim::Co<fwbase::Status> Delete(const std::string& db, const std::string& key);

  // The _changes feed. The platform's cloud-trigger component consumes this.
  fwsim::Channel<UpdateEvent>& update_feed() { return update_feed_; }

  uint64_t puts() const { return puts_; }
  uint64_t gets() const { return gets_; }
  size_t DocCount(const std::string& db) const;

 private:
  fwsim::Simulation& sim_;
  Filesystem& fs_;
  Config config_;
  std::map<std::string, std::map<std::string, Document>> dbs_;
  fwsim::Channel<UpdateEvent> update_feed_;
  uint64_t puts_ = 0;
  uint64_t gets_ = 0;
};

}  // namespace fwstore

#endif  // FIREWORKS_SRC_STORAGE_DOCUMENT_DB_H_
