// Snapshot registry + per-host chunk cache (bookkeeping only).
//
// The registry is the cluster's source of truth for published snapshots: it
// maps app names to manifests and chunk digests to sizes, and counts what it
// serves. The ChunkCache is one host's byte-budgeted LRU over chunk digests —
// the thing that turns a second cold start on the same runtime into a
// delta-only pull. Neither type models time or the network; transfer cost
// lives in fwnet::ClusterFabric and the fetch protocol (retries, peer
// fallback) in fwcluster::SnapshotDistribution.
#ifndef FIREWORKS_SRC_STORAGE_REGISTRY_H_
#define FIREWORKS_SRC_STORAGE_REGISTRY_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/storage/manifest.h"

namespace fwstore {

// Byte-budgeted LRU set of chunk digests. Insertion order is the eviction
// order (front of the list = coldest); Touch moves a digest to the hot end.
// Deterministic: same insert/touch sequence → same eviction sequence.
class ChunkCache {
 public:
  explicit ChunkCache(uint64_t budget_bytes) : budget_bytes_(budget_bytes) {}

  bool Contains(uint64_t digest) const { return entries_.count(digest) > 0; }

  // Marks a resident chunk most-recently-used. No-op if absent.
  void Touch(uint64_t digest);

  // Inserts a chunk, evicting cold entries until the budget holds. Returns
  // the digests evicted (oldest first). A chunk larger than the whole budget
  // is refused (returned uncached, nothing evicted for it); an already
  // resident digest is just touched.
  std::vector<uint64_t> Insert(uint64_t digest, uint64_t bytes);

  void Erase(uint64_t digest);

  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t budget_bytes() const { return budget_bytes_; }
  uint64_t entries() const { return entries_.size(); }
  uint64_t evictions() const { return evictions_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  // Contains + hit/miss accounting + LRU touch on hit, for fetch paths.
  bool Lookup(uint64_t digest);

 private:
  struct Entry {
    uint64_t bytes = 0;
    std::list<uint64_t>::iterator order_it;
  };

  uint64_t budget_bytes_;
  uint64_t used_bytes_ = 0;
  uint64_t evictions_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::list<uint64_t> order_;  // front = coldest, back = hottest; bounded by budget_bytes_.
  std::map<uint64_t, Entry> entries_;
};

// The cluster-wide snapshot registry: published manifests plus the chunk
// universe they reference. Pure state + counters; callers charge transfer
// time through the fabric before touching it.
class SnapshotRegistry {
 public:
  // Publishes (or republishes) an app's manifest; chunk digests join the
  // served universe.
  void Publish(const SnapshotManifest& manifest);

  bool HasManifest(const std::string& app) const {
    return manifests_.count(app) > 0;
  }

  fwbase::Result<SnapshotManifest> FetchManifest(const std::string& app);

  // Uncounted read of a published manifest (local bookkeeping, not a fetch);
  // nullptr when the app was never published.
  const SnapshotManifest* Peek(const std::string& app) const {
    auto it = manifests_.find(app);
    return it == manifests_.end() ? nullptr : &it->second;
  }

  bool HasChunk(uint64_t digest) const { return chunk_bytes_.count(digest) > 0; }

  // Serves one chunk by digest (counts bytes); NotFound if never published.
  fwbase::Result<uint64_t> FetchChunk(uint64_t digest);

  uint64_t manifest_count() const { return manifests_.size(); }
  uint64_t chunk_count() const { return chunk_bytes_.size(); }
  uint64_t manifest_fetches() const { return manifest_fetches_; }
  uint64_t chunk_fetches() const { return chunk_fetches_; }
  uint64_t bytes_served() const { return bytes_served_; }

 private:
  std::map<std::string, SnapshotManifest> manifests_;
  std::map<uint64_t, uint64_t> chunk_bytes_;  // digest -> size.
  uint64_t manifest_fetches_ = 0;
  uint64_t chunk_fetches_ = 0;
  uint64_t bytes_served_ = 0;
};

}  // namespace fwstore

#endif  // FIREWORKS_SRC_STORAGE_REGISTRY_H_
