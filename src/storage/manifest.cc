#include "src/storage/manifest.h"

#include <utility>

#include "src/base/check.h"
// The JSON codec is a leaf utility with no dependency back into storage; the
// manifest wire format is defined here so every consumer (registry, cluster,
// tools) parses one schema.
#include "src/lang/json.h"  // fwlint:allow(layering)

namespace fwstore {

namespace {

using fwlang::JsonValue;

JsonValue U64(uint64_t v) { return JsonValue(static_cast<double>(v)); }

// 64-bit digests exceed a double's 53-bit integer range, so they travel as
// fixed-width hex strings.
std::string HexU64(uint64_t v) {
  char buf[17];
  static const char* kHex = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[15 - i] = kHex[(v >> (i * 4)) & 0xF];
  }
  buf[16] = '\0';
  return buf;
}

bool ParseHexU64(const std::string& s, uint64_t* out) {
  if (s.size() != 16) {
    return false;
  }
  uint64_t v = 0;
  for (char c : s) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    v = (v << 4) | digit;
  }
  *out = v;
  return true;
}

fwbase::Status Malformed(const std::string& what) {
  return fwbase::Status::InvalidArgument("snapshot manifest: " + what);
}

// Numbers in the manifest are integral byte/page counts; reject anything else.
bool ReadU64(const JsonValue* v, uint64_t* out) {
  if (v == nullptr || !v->is_number() || v->AsNumber() < 0) {
    return false;
  }
  *out = static_cast<uint64_t>(v->AsNumber());
  return true;
}

}  // namespace

const char* LayerKindName(LayerKind kind) {
  switch (kind) {
    case LayerKind::kBase:
      return "base";
    case LayerKind::kDelta:
      return "delta";
  }
  return "?";
}

uint64_t LayerManifest::bytes() const {
  uint64_t total = 0;
  for (const ChunkRef& c : chunks) {
    total += c.bytes;
  }
  return total;
}

uint64_t SnapshotManifest::total_chunks() const {
  uint64_t total = 0;
  for (const LayerManifest& layer : layers) {
    total += layer.chunks.size();
  }
  return total;
}

uint64_t SnapshotManifest::working_set_pages() const {
  uint64_t total = 0;
  for (const PageRange& r : working_set) {
    total += r.count;
  }
  return total;
}

std::string SnapshotManifest::ToJson() const {
  JsonValue::Object root;
  root["schema"] = JsonValue(std::string("fwsnap-manifest/1"));
  root["app"] = JsonValue(app);
  root["image_bytes"] = U64(image_bytes);
  root["working_set_bytes"] = U64(working_set_bytes);

  JsonValue::Array layer_array;
  for (const LayerManifest& layer : layers) {
    JsonValue::Object lo;
    lo["key"] = JsonValue(layer.key);
    lo["kind"] = JsonValue(std::string(LayerKindName(layer.kind)));
    JsonValue::Array chunk_array;
    for (const ChunkRef& c : layer.chunks) {
      JsonValue::Object co;
      co["digest"] = JsonValue(HexU64(c.digest));
      co["bytes"] = U64(c.bytes);
      chunk_array.push_back(JsonValue(std::move(co)));
    }
    lo["chunks"] = JsonValue(std::move(chunk_array));
    layer_array.push_back(JsonValue(std::move(lo)));
  }
  root["layers"] = JsonValue(std::move(layer_array));

  JsonValue::Array ws_array;
  for (const PageRange& r : working_set) {
    JsonValue::Object ro;
    ro["first"] = U64(r.first);
    ro["count"] = U64(r.count);
    ws_array.push_back(JsonValue(std::move(ro)));
  }
  root["working_set"] = JsonValue(std::move(ws_array));

  return fwlang::JsonToString(JsonValue(std::move(root)));
}

fwbase::Result<SnapshotManifest> SnapshotManifest::Parse(const std::string& text) {
  auto parsed = fwlang::ParseJson(text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Malformed("document is not an object");
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->AsString() != "fwsnap-manifest/1") {
    return Malformed("missing or unknown schema");
  }

  SnapshotManifest m;
  const JsonValue* app = root.Find("app");
  if (app == nullptr || !app->is_string()) {
    return Malformed("missing app");
  }
  m.app = app->AsString();
  if (!ReadU64(root.Find("image_bytes"), &m.image_bytes)) {
    return Malformed("missing image_bytes");
  }
  if (!ReadU64(root.Find("working_set_bytes"), &m.working_set_bytes)) {
    return Malformed("missing working_set_bytes");
  }

  const JsonValue* layers = root.Find("layers");
  if (layers == nullptr || !layers->is_array()) {
    return Malformed("missing layers");
  }
  for (const JsonValue& lv : layers->AsArray()) {
    if (!lv.is_object()) {
      return Malformed("layer is not an object");
    }
    LayerManifest layer;
    const JsonValue* key = lv.Find("key");
    if (key == nullptr || !key->is_string()) {
      return Malformed("layer missing key");
    }
    layer.key = key->AsString();
    const JsonValue* kind = lv.Find("kind");
    if (kind == nullptr || !kind->is_string()) {
      return Malformed("layer missing kind");
    }
    if (kind->AsString() == "base") {
      layer.kind = LayerKind::kBase;
    } else if (kind->AsString() == "delta") {
      layer.kind = LayerKind::kDelta;
    } else {
      return Malformed("unknown layer kind '" + kind->AsString() + "'");
    }
    const JsonValue* chunks = lv.Find("chunks");
    if (chunks == nullptr || !chunks->is_array()) {
      return Malformed("layer missing chunks");
    }
    for (const JsonValue& cv : chunks->AsArray()) {
      if (!cv.is_object()) {
        return Malformed("chunk is not an object");
      }
      ChunkRef ref;
      const JsonValue* digest = cv.Find("digest");
      if (digest == nullptr || !digest->is_string() ||
          !ParseHexU64(digest->AsString(), &ref.digest)) {
        return Malformed("chunk digest is not a 16-hex-digit string");
      }
      if (!ReadU64(cv.Find("bytes"), &ref.bytes)) {
        return Malformed("chunk missing bytes");
      }
      layer.chunks.push_back(ref);
    }
    m.layers.push_back(std::move(layer));
  }

  const JsonValue* ws = root.Find("working_set");
  if (ws == nullptr || !ws->is_array()) {
    return Malformed("missing working_set");
  }
  for (const JsonValue& rv : ws->AsArray()) {
    if (!rv.is_object()) {
      return Malformed("working-set range is not an object");
    }
    PageRange range;
    if (!ReadU64(rv.Find("first"), &range.first) ||
        !ReadU64(rv.Find("count"), &range.count)) {
      return Malformed("working-set range missing first/count");
    }
    m.working_set.push_back(range);
  }
  return m;
}

}  // namespace fwstore
