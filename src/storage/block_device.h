// BlockDevice: a latency + bandwidth disk model with bounded parallelism.
//
// Operations cost a fixed per-op latency plus size/bandwidth transfer time,
// and at most `parallelism` operations progress concurrently (an SSD queue).
#ifndef FIREWORKS_SRC_STORAGE_BLOCK_DEVICE_H_
#define FIREWORKS_SRC_STORAGE_BLOCK_DEVICE_H_

#include <cstdint>

#include "src/base/units.h"
#include "src/simcore/primitives.h"
#include "src/simcore/simulation.h"

namespace fwfault {
class FaultInjector;
}  // namespace fwfault

namespace fwstore {

using fwbase::Duration;

class BlockDevice {
 public:
  struct Config {
    Duration read_latency = Duration::Micros(80);   // NVMe-class.
    Duration write_latency = Duration::Micros(20);  // Write cache absorbs.
    double read_bw_bytes_per_sec = 2.0e9;
    double write_bw_bytes_per_sec = 0.55e9;
    int parallelism = 8;
  };

  BlockDevice(fwsim::Simulation& sim, const Config& config);

  // Optional: media read errors from the injector are absorbed here by the
  // device's own retry (the op cost is charged again), mirroring firmware
  // behaviour. Callers never see them; io_retries() counts the re-reads.
  void set_fault_injector(fwfault::FaultInjector* injector) { injector_ = injector; }

  fwsim::Co<void> Read(uint64_t bytes);
  fwsim::Co<void> Write(uint64_t bytes);

  // Pure cost queries (no queueing), for planners.
  Duration ReadCost(uint64_t bytes) const;
  Duration WriteCost(uint64_t bytes) const;

  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t read_ops() const { return read_ops_; }
  uint64_t write_ops() const { return write_ops_; }
  uint64_t io_retries() const { return io_retries_; }

 private:
  fwsim::Co<void> DoOp(Duration cost);

  fwsim::Simulation& sim_;
  Config config_;
  fwsim::Resource queue_;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t read_ops_ = 0;
  uint64_t write_ops_ = 0;
  uint64_t io_retries_ = 0;
  fwfault::FaultInjector* injector_ = nullptr;
};

}  // namespace fwstore

#endif  // FIREWORKS_SRC_STORAGE_BLOCK_DEVICE_H_
