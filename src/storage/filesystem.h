// Filesystem personalities: the per-operation software overhead of the I/O
// stack between a sandboxed function and the block device.
//
// The paper's disk benchmark (§5.2.1 (2)) finds I/O latency ordered
//   OverlayFS/chroot (OpenWhisk)  <  microVM virtio/9p (Firecracker,
//   Fireworks)  <  gVisor Sentry+Gofer,
// because each stack adds a different interception cost per syscall. Each
// personality adds a fixed per-op overhead and scales effective bandwidth.
#ifndef FIREWORKS_SRC_STORAGE_FILESYSTEM_H_
#define FIREWORKS_SRC_STORAGE_FILESYSTEM_H_

#include <cstdint>
#include <string>

#include "src/storage/block_device.h"

namespace fwstore {

enum class FsKind {
  kHostDirect,  // Bare host filesystem.
  kOverlayFs,   // Container overlay + chroot (OpenWhisk).
  kVirtio,      // microVM paravirtual block (Firecracker / Fireworks).
  kP9fs,        // 9p shared folder (crosvm-style).
  kGofer,       // gVisor Sentry syscall interception + Gofer file proxy.
};

const char* FsKindName(FsKind kind);

class Filesystem {
 public:
  struct Config {
    Duration per_op_overhead;  // Syscall + interception path, per operation.
    double bandwidth_scale;    // Fraction of device bandwidth achievable.
  };

  // Calibrated defaults per personality.
  static Config ConfigFor(FsKind kind);

  Filesystem(fwsim::Simulation& sim, BlockDevice& device, FsKind kind);

  fwsim::Co<void> ReadFile(uint64_t bytes);
  fwsim::Co<void> WriteFile(uint64_t bytes);

  FsKind kind() const { return kind_; }
  uint64_t ops() const { return ops_; }

 private:
  fwsim::Simulation& sim_;
  BlockDevice& device_;
  FsKind kind_;
  Config config_;
  uint64_t ops_ = 0;
};

}  // namespace fwstore

#endif  // FIREWORKS_SRC_STORAGE_FILESYSTEM_H_
