#include "src/storage/registry.h"

namespace fwstore {

void ChunkCache::Touch(uint64_t digest) {
  auto it = entries_.find(digest);
  if (it == entries_.end()) {
    return;
  }
  order_.splice(order_.end(), order_, it->second.order_it);
}

std::vector<uint64_t> ChunkCache::Insert(uint64_t digest, uint64_t bytes) {
  std::vector<uint64_t> evicted;
  if (entries_.count(digest) > 0) {
    Touch(digest);
    return evicted;
  }
  if (bytes > budget_bytes_) {
    // Never evict the whole cache for one oversized chunk.
    return evicted;
  }
  while (used_bytes_ + bytes > budget_bytes_ && !order_.empty()) {
    const uint64_t cold = order_.front();
    evicted.push_back(cold);
    Erase(cold);
    ++evictions_;
  }
  Entry e;
  e.bytes = bytes;
  order_.push_back(digest);
  e.order_it = std::prev(order_.end());
  entries_[digest] = e;
  used_bytes_ += bytes;
  return evicted;
}

void ChunkCache::Erase(uint64_t digest) {
  auto it = entries_.find(digest);
  if (it == entries_.end()) {
    return;
  }
  used_bytes_ -= it->second.bytes;
  order_.erase(it->second.order_it);
  entries_.erase(it);
}

bool ChunkCache::Lookup(uint64_t digest) {
  if (Contains(digest)) {
    ++hits_;
    Touch(digest);
    return true;
  }
  ++misses_;
  return false;
}

void SnapshotRegistry::Publish(const SnapshotManifest& manifest) {
  for (const LayerManifest& layer : manifest.layers) {
    for (const ChunkRef& c : layer.chunks) {
      chunk_bytes_[c.digest] = c.bytes;
    }
  }
  manifests_[manifest.app] = manifest;
}

fwbase::Result<SnapshotManifest> SnapshotRegistry::FetchManifest(
    const std::string& app) {
  auto it = manifests_.find(app);
  if (it == manifests_.end()) {
    return fwbase::Status::NotFound("no manifest published for '" + app + "'");
  }
  ++manifest_fetches_;
  return it->second;
}

fwbase::Result<uint64_t> SnapshotRegistry::FetchChunk(uint64_t digest) {
  auto it = chunk_bytes_.find(digest);
  if (it == chunk_bytes_.end()) {
    return fwbase::Status::NotFound("chunk not in registry");
  }
  ++chunk_fetches_;
  bytes_served_ += it->second;
  return it->second;
}

}  // namespace fwstore
