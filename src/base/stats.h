// Statistics helpers used by benches and by the platforms' self-reporting.
#ifndef FIREWORKS_SRC_BASE_STATS_H_
#define FIREWORKS_SRC_BASE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fwbase {

// Streaming mean/variance via Welford's algorithm plus retained samples for
// exact order statistics. Sample counts in this project are small (hundreds),
// so retention is cheap and percentiles are exact.
class SampleStats {
 public:
  void Add(double x);
  // Folds `other` in, as if every one of its samples had been Add()ed here.
  // Associative and commutative up to floating-point rounding of the
  // streaming moments; order statistics are exact (samples are retained).
  void Merge(const SampleStats& other);

  int64_t count() const { return count_; }
  double mean() const;
  double stddev() const;
  // min/max/Percentile return NaN when no samples have been added.
  double min() const;
  double max() const;
  double sum() const { return sum_; }
  // Exact percentile with linear interpolation; p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

// Geometric mean of strictly positive values.
double GeometricMean(const std::vector<double>& values);

// Power-of-two bucketed histogram for latency distributions.
class LogHistogram {
 public:
  void Add(uint64_t value);
  // Bucket-wise sum: exactly associative and commutative.
  void Merge(const LogHistogram& other);
  uint64_t count() const { return count_; }
  // Upper-bound estimate of percentile p in [0, 100].
  uint64_t PercentileUpperBound(double p) const;
  std::string ToString() const;

 private:
  static constexpr int kBuckets = 64;
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
};

}  // namespace fwbase

#endif  // FIREWORKS_SRC_BASE_STATS_H_
