#include "src/base/logging.h"

#include <cstdio>
#include <utility>

namespace fwbase {
namespace {

LogLevel g_min_level = LogLevel::kWarning;
std::function<std::string()>& TimeSource() {
  static std::function<std::string()> source;
  return source;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void SetLogLevel(LogLevel level) { g_min_level = level; }
LogLevel GetLogLevel() { return g_min_level; }

void SetLogTimeSource(std::function<std::string()> source) { TimeSource() = std::move(source); }

void LogLine(LogLevel level, const char* file, int line, const std::string& message) {
  // Strip directories from the file path for compact output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  std::string when;
  if (TimeSource()) {
    when = TimeSource()();
  }
  std::fprintf(stderr, "[%-5s]%s%s %s:%d: %s\n", LogLevelName(level), when.empty() ? "" : " ",
               when.c_str(), base, line, message.c_str());
}

}  // namespace fwbase
