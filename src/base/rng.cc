#include "src/base/rng.h"

#include <cmath>

#include "src/base/check.h"

namespace fwbase {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  FW_CHECK(bound > 0);
  // Rejection sampling: retry draws that fall into the biased tail.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  FW_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(NextU64());
  }
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  // 53 uniform mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) { return lo + (hi - lo) * UniformDouble(); }

double Rng::Exponential(double mean) {
  FW_CHECK(mean > 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

bool Rng::Chance(double p) { return UniformDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace fwbase
