// Deterministic random number generation for the simulator.
//
// Every stochastic model parameter draws from an explicitly seeded Rng so that
// simulation runs are exactly reproducible. The generator is xoshiro256**,
// seeded through SplitMix64 per the reference implementation.
#ifndef FIREWORKS_SRC_BASE_RNG_H_
#define FIREWORKS_SRC_BASE_RNG_H_

#include <cstdint>

namespace fwbase {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform on the full 64-bit range.
  uint64_t NextU64();

  // Uniform in [0, bound). `bound` must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  uint64_t UniformU64(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Normal via Box–Muller.
  double Normal(double mean, double stddev);

  // Log-normal parameterised by the mean/stddev of the underlying normal.
  double LogNormal(double mu, double sigma);

  // Bernoulli trial.
  bool Chance(double p);

  // Derives an independent child generator (for per-entity streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fwbase

#endif  // FIREWORKS_SRC_BASE_RNG_H_
