// Minimal Status / Result<T> types for recoverable errors.
//
// The simulator does not use exceptions: operations that can fail in ways a
// caller should handle (e.g. snapshot-store eviction, NAT misconfiguration,
// out-of-memory) return Status or Result<T>. Programming errors use FW_CHECK.
#ifndef FIREWORKS_SRC_BASE_STATUS_H_
#define FIREWORKS_SRC_BASE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "src/base/check.h"

namespace fwbase {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,
  kInternal,
  kDeadlineExceeded,
  kDataLoss,
};

const char* StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status DataLoss(std::string m) { return Status(StatusCode::kDataLoss, std::move(m)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status. Accessing the value of an
// error result is a programming error (FW_CHECK).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    FW_CHECK_MSG(!std::get<Status>(v_).ok(), "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const T& value() const& {
    FW_CHECK_MSG(ok(), status_ref().ToString().c_str());
    return std::get<T>(v_);
  }
  T& value() & {
    FW_CHECK_MSG(ok(), status_ref().ToString().c_str());
    return std::get<T>(v_);
  }
  T&& value() && {
    FW_CHECK_MSG(ok(), status_ref().ToString().c_str());
    return std::get<T>(std::move(v_));
  }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(v_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  const Status& status_ref() const { return std::get<Status>(v_); }
  std::variant<T, Status> v_;
};

}  // namespace fwbase

#endif  // FIREWORKS_SRC_BASE_STATUS_H_
