#include "src/base/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/base/check.h"
#include "src/base/strings.h"

namespace fwbase {

void SampleStats::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void SampleStats::Merge(const SampleStats& other) {
  if (other.count_ == 0) {
    return;
  }
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
  // Chan et al.'s parallel update of the streaming moments.
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  count_ += other.count_;
  sum_ += other.sum_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
}

double SampleStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double SampleStats::stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double SampleStats::min() const {
  if (count_ == 0) {
    return std::nan("");
  }
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::max() const {
  if (count_ == 0) {
    return std::nan("");
  }
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::Percentile(double p) const {
  FW_CHECK(p >= 0.0 && p <= 100.0);
  if (count_ == 0) {
    return std::nan("");
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) {
    return samples_[0];
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double GeometricMean(const std::vector<double>& values) {
  FW_CHECK(!values.empty());
  double log_sum = 0.0;
  for (double v : values) {
    FW_CHECK_MSG(v > 0.0, "geometric mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

void LogHistogram::Add(uint64_t value) {
  const int bucket = value == 0 ? 0 : 64 - std::countl_zero(value);
  buckets_[std::min(bucket, kBuckets - 1)]++;
  ++count_;
}

void LogHistogram::Merge(const LogHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
}

uint64_t LogHistogram::PercentileUpperBound(double p) const {
  FW_CHECK(count_ > 0);
  const uint64_t target =
      static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      if (i == 0) {
        return 0;
      }
      // The top bucket also absorbs clamped values >= 2^63, so its only
      // honest upper bound is the full range.
      return i == kBuckets - 1 ? UINT64_MAX : (1ULL << i) - 1;
    }
  }
  return UINT64_MAX;
}

std::string LogHistogram::ToString() const {
  std::string out;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] != 0) {
      out += StrFormat("[2^%02d) %llu  ", i, static_cast<unsigned long long>(buckets_[i]));
    }
  }
  return out;
}

}  // namespace fwbase
