// Lightweight invariant checking.
//
// FW_CHECK aborts (in all build types) when an invariant is violated; the
// simulator's correctness depends on these holding, so they are never compiled
// out. FW_DCHECK is for hot paths and compiles away in NDEBUG builds.
#ifndef FIREWORKS_SRC_BASE_CHECK_H_
#define FIREWORKS_SRC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace fwbase {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "FW_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace fwbase

#define FW_CHECK(cond)                                         \
  do {                                                         \
    if (!(cond)) {                                             \
      ::fwbase::CheckFailed(#cond, __FILE__, __LINE__, "");    \
    }                                                          \
  } while (0)

#define FW_CHECK_MSG(cond, msg)                                \
  do {                                                         \
    if (!(cond)) {                                             \
      ::fwbase::CheckFailed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                          \
  } while (0)

#ifdef NDEBUG
#define FW_DCHECK(cond) \
  do {                  \
  } while (0)
#else
#define FW_DCHECK(cond) FW_CHECK(cond)
#endif

#endif  // FIREWORKS_SRC_BASE_CHECK_H_
