// Time and size units used throughout the simulator.
//
// All simulated time is kept in integer nanoseconds (Duration / SimTime below);
// all memory sizes are kept in bytes. Page granularity is fixed at 4 KiB, the
// granularity at which the host memory model tracks sharing.
#ifndef FIREWORKS_SRC_BASE_UNITS_H_
#define FIREWORKS_SRC_BASE_UNITS_H_

#include <cstdint>
#include <string>
#include <type_traits>

namespace fwbase {

// ---------------------------------------------------------------------------
// Sizes.
// ---------------------------------------------------------------------------

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// The host memory model tracks sharing at classic 4 KiB page granularity.
inline constexpr uint64_t kPageSize = 4 * kKiB;

// Rounds `bytes` up to whole pages.
constexpr uint64_t PagesFor(uint64_t bytes) { return (bytes + kPageSize - 1) / kPageSize; }

// ---------------------------------------------------------------------------
// Duration: a signed span of simulated time, in nanoseconds.
// ---------------------------------------------------------------------------

class Duration {
 public:
  constexpr Duration() : ns_(0) {}

  static constexpr Duration Nanos(int64_t ns) { return Duration(ns); }
  static constexpr Duration Micros(int64_t us) { return Duration(us * 1000); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000 * 1000); }
  static constexpr Duration Seconds(int64_t s) { return Duration(s * 1000 * 1000 * 1000); }
  // Fractional constructors for model parameters expressed in natural units.
  static constexpr Duration MicrosF(double us) {
    return Duration(static_cast<int64_t>(us * 1e3));
  }
  static constexpr Duration MillisF(double ms) {
    return Duration(static_cast<int64_t>(ms * 1e6));
  }
  static constexpr Duration SecondsF(double s) { return Duration(static_cast<int64_t>(s * 1e9)); }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Max() { return Duration(INT64_MAX); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double micros() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  template <typename I>
    requires std::is_integral_v<I>
  constexpr Duration operator*(I k) const {
    return Duration(ns_ * static_cast<int64_t>(k));
  }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(ns_) * k));
  }
  template <typename I>
    requires std::is_integral_v<I>
  constexpr Duration operator/(I k) const {
    return Duration(ns_ / static_cast<int64_t>(k));
  }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  Duration& operator-=(Duration o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  // Human-readable rendering with an auto-selected unit, e.g. "12.4ms".
  std::string ToString() const;

 private:
  constexpr explicit Duration(int64_t ns) : ns_(ns) {}
  int64_t ns_;
};

template <typename I>
  requires std::is_integral_v<I>
constexpr Duration operator*(I k, Duration d) {
  return d * k;
}
constexpr Duration operator*(double k, Duration d) { return d * k; }

// ---------------------------------------------------------------------------
// SimTime: an absolute point on the simulated clock.
// ---------------------------------------------------------------------------

class SimTime {
 public:
  constexpr SimTime() : ns_(0) {}
  static constexpr SimTime FromNanos(int64_t ns) { return SimTime(ns); }
  static constexpr SimTime Zero() { return SimTime(0); }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr SimTime operator+(Duration d) const { return SimTime(ns_ + d.nanos()); }
  constexpr SimTime operator-(Duration d) const { return SimTime(ns_ - d.nanos()); }
  constexpr Duration operator-(SimTime o) const { return Duration::Nanos(ns_ - o.ns_); }
  constexpr auto operator<=>(const SimTime&) const = default;

  std::string ToString() const;

 private:
  constexpr explicit SimTime(int64_t ns) : ns_(ns) {}
  int64_t ns_;
};

namespace literals {
constexpr Duration operator""_ns(unsigned long long v) { return Duration::Nanos(v); }
constexpr Duration operator""_us(unsigned long long v) { return Duration::Micros(v); }
constexpr Duration operator""_ms(unsigned long long v) { return Duration::Millis(v); }
constexpr Duration operator""_s(unsigned long long v) { return Duration::Seconds(v); }
constexpr uint64_t operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr uint64_t operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr uint64_t operator""_GiB(unsigned long long v) { return v * kGiB; }
}  // namespace literals

// Renders a byte count with an auto-selected unit, e.g. "512.0 MiB".
std::string BytesToString(uint64_t bytes);

}  // namespace fwbase

#endif  // FIREWORKS_SRC_BASE_UNITS_H_
