#include "src/base/units.h"

#include "src/base/strings.h"

namespace fwbase {

std::string Duration::ToString() const {
  const double abs_ns = ns_ < 0 ? -static_cast<double>(ns_) : static_cast<double>(ns_);
  if (abs_ns < 1e3) {
    return StrFormat("%lldns", static_cast<long long>(ns_));
  }
  if (abs_ns < 1e6) {
    return StrFormat("%.2fus", static_cast<double>(ns_) / 1e3);
  }
  if (abs_ns < 1e9) {
    return StrFormat("%.2fms", static_cast<double>(ns_) / 1e6);
  }
  return StrFormat("%.3fs", static_cast<double>(ns_) / 1e9);
}

std::string SimTime::ToString() const { return StrFormat("t=%.6fs", seconds()); }

std::string BytesToString(uint64_t bytes) {
  if (bytes < kKiB) {
    return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  }
  if (bytes < kMiB) {
    return StrFormat("%.1f KiB", static_cast<double>(bytes) / static_cast<double>(kKiB));
  }
  if (bytes < kGiB) {
    return StrFormat("%.1f MiB", static_cast<double>(bytes) / static_cast<double>(kMiB));
  }
  return StrFormat("%.2f GiB", static_cast<double>(bytes) / static_cast<double>(kGiB));
}

}  // namespace fwbase
