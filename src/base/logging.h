// Leveled logging for the simulator.
//
// Log lines are prefixed with the current simulated time when a Simulation is
// active (the sim kernel installs a time source). Default level is kWarning so
// tests and benches stay quiet; examples raise it to kInfo.
#ifndef FIREWORKS_SRC_BASE_LOGGING_H_
#define FIREWORKS_SRC_BASE_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace fwbase {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarning = 3, kError = 4 };

const char* LogLevelName(LogLevel level);

// Global minimum level; messages below it are dropped cheaply.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// The sim kernel installs a callback returning the current simulated time as a
// human-readable string; empty function means "no active simulation".
void SetLogTimeSource(std::function<std::string()> source);

// Emits one formatted line to stderr.
void LogLine(LogLevel level, const char* file, int line, const std::string& message);

namespace logging_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace logging_internal
}  // namespace fwbase

#define FW_LOG(level)                                                            \
  if (::fwbase::LogLevel::level < ::fwbase::GetLogLevel()) {                     \
  } else                                                                         \
    ::fwbase::logging_internal::LogMessage(::fwbase::LogLevel::level, __FILE__,  \
                                           __LINE__)                             \
        .stream()

#endif  // FIREWORKS_SRC_BASE_LOGGING_H_
