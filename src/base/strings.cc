#include "src/base/strings.h"

#include <cstdio>

namespace fwbase {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace fwbase
