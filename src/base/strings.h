// Small string helpers (no std::format on this toolchain).
#ifndef FIREWORKS_SRC_BASE_STRINGS_H_
#define FIREWORKS_SRC_BASE_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace fwbase {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

// Splits on a single character, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace fwbase

#endif  // FIREWORKS_SRC_BASE_STRINGS_H_
