// A Kafka-like message broker: topics, partitioned append-only logs, offsets.
//
// Fireworks passes invocation arguments through a per-function-instance topic
// (§3.6): the host produces the arguments *before* resuming the snapshot, and
// the resumed guest runs the equivalent of
//     kafkacat -C -b host -t topic<fcID> -o -1 -c 1
// i.e. "consume exactly one record starting from the last offset". The broker
// supports that access pattern natively (ConsumeLast), plus offset-based
// consumption with blocking semantics for chain pipelines.
#ifndef FIREWORKS_SRC_MSGBUS_BROKER_H_
#define FIREWORKS_SRC_MSGBUS_BROKER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>
#include <type_traits>

#include "src/base/status.h"
#include "src/obs/observability.h"
#include "src/simcore/primitives.h"
#include "src/simcore/simulation.h"

namespace fwfault {
class FaultInjector;
}  // namespace fwfault

namespace fwbus {

using fwbase::Duration;
using fwbase::Result;
using fwbase::Status;

struct Record {
  // Declared constructors keep Record non-aggregate: it crosses coroutine
  // boundaries by value (see the toolchain constraint note in simcore/coro.h).
  Record() = default;
  Record(std::string key, std::string value)
      : key(std::move(key)), value(std::move(value)) {}

  std::string key;
  std::string value;
  int64_t offset = -1;

  uint64_t SizeBytes() const { return key.size() + value.size(); }
};
static_assert(!std::is_aggregate_v<Record>);

class Broker {
 public:
  struct Config {
    Duration produce_cost = Duration::Micros(400);  // Append + ack (acks=1).
    Duration fetch_cost = Duration::Micros(300);    // Fetch request round trip.
    double bandwidth_bytes_per_sec = 200.0e6;
  };

  explicit Broker(fwsim::Simulation& sim);
  Broker(fwsim::Simulation& sim, const Config& config);

  // Optional: spans for produce/consume plus "bus.*" metrics (end-to-end
  // produce/consume latencies, outstanding-record queue-depth gauge). The
  // Observability must outlive the broker.
  void set_observability(fwobs::Observability* obs);

  // Optional: lets the injector drop an acked record before it lands, append
  // it twice, or add delivery latency (all inside Produce).
  void set_fault_injector(fwfault::FaultInjector* injector) { injector_ = injector; }

  Status CreateTopic(const std::string& topic, int partitions = 1);
  Status DeleteTopic(const std::string& topic);
  bool HasTopic(const std::string& topic) const;
  int PartitionCount(const std::string& topic) const;

  // Appends a record; returns its offset.
  fwsim::Co<Result<int64_t>> Produce(const std::string& topic, int partition, Record record);

  // Consumes the record at `offset`, blocking until it is available.
  fwsim::Co<Result<Record>> ConsumeAt(const std::string& topic, int partition, int64_t offset);

  // kafkacat -o -1 -c 1: consume one record starting from (end - 1); blocks
  // until the partition is non-empty.
  fwsim::Co<Result<Record>> ConsumeLast(const std::string& topic, int partition);

  // ConsumeLast with a deadline: kDeadlineExceeded if the partition is still
  // empty `timeout` after the call. When a record is already present (the
  // normal host-produces-before-resume pattern) the timing is identical to
  // ConsumeLast. Waiting is a poll loop rather than an event wait so a record
  // that never arrives (e.g. dropped by a fault) cannot strand the consumer.
  fwsim::Co<Result<Record>> ConsumeLastWithTimeout(const std::string& topic, int partition,
                                                   Duration timeout);

  // Non-blocking view of the end offset (next offset to be assigned).
  Result<int64_t> EndOffset(const std::string& topic, int partition) const;

  uint64_t records_produced() const { return records_produced_; }
  uint64_t records_consumed() const { return records_consumed_; }

 private:
  struct Partition {
    explicit Partition(fwsim::Simulation& sim) : appended(sim) {}
    std::vector<Record> log;
    fwsim::SimEvent appended;
  };
  struct Topic {
    std::vector<std::unique_ptr<Partition>> partitions;
  };

  Result<Partition*> FindPartition(const std::string& topic, int partition);
  Duration TransferTime(uint64_t bytes) const;
  void RecordConsume(fwbase::SimTime t0);

  fwsim::Simulation& sim_;
  Config config_;
  std::map<std::string, Topic> topics_;
  uint64_t records_produced_ = 0;
  uint64_t records_consumed_ = 0;
  fwobs::Tracer* tracer_ = nullptr;
  fwobs::Profiler* profiler_ = nullptr;
  fwobs::ProfScopeId produce_scope_ = 0;
  fwobs::ProfScopeId consume_scope_ = 0;
  fwobs::Counter* produce_counter_ = nullptr;
  fwobs::Counter* consume_counter_ = nullptr;
  fwobs::Histogram* produce_latency_ = nullptr;
  fwobs::Histogram* consume_latency_ = nullptr;
  fwobs::Gauge* depth_gauge_ = nullptr;
  fwfault::FaultInjector* injector_ = nullptr;
};

}  // namespace fwbus

#endif  // FIREWORKS_SRC_MSGBUS_BROKER_H_
