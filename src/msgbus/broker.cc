#include "src/msgbus/broker.h"

#include <utility>

#include "src/base/check.h"
#include "src/fault/fault.h"

namespace fwbus {

namespace {
// Poll interval while ConsumeLastWithTimeout waits on an empty partition, and
// the mean of the extra exponential latency a delay fault adds in Produce.
constexpr Duration kConsumePollInterval = Duration::Millis(1);
constexpr Duration kDelayFaultMean = Duration::Millis(5);
}  // namespace

Broker::Broker(fwsim::Simulation& sim) : Broker(sim, Config()) {}

Broker::Broker(fwsim::Simulation& sim, const Config& config) : sim_(sim), config_(config) {}

void Broker::set_observability(fwobs::Observability* obs) {
  tracer_ = &obs->tracer();
  profiler_ = &obs->profiler();
  produce_scope_ = profiler_->RegisterScope("bus.produce.commit");
  consume_scope_ = profiler_->RegisterScope("bus.consume.fetch");
  produce_counter_ = &obs->metrics().GetCounter("bus.produce.count");
  consume_counter_ = &obs->metrics().GetCounter("bus.consume.count");
  produce_latency_ = &obs->metrics().GetHistogram("bus.produce.micros");
  consume_latency_ = &obs->metrics().GetHistogram("bus.consume.micros");
  depth_gauge_ = &obs->metrics().GetGauge("bus.queue.depth");
}

void Broker::RecordConsume(fwbase::SimTime t0) {
  FW_PROFILE_SCOPE_ID(profiler_, consume_scope_);
  ++records_consumed_;
  if (consume_counter_ != nullptr) {
    consume_counter_->Increment();
    consume_latency_->Observe(static_cast<uint64_t>((sim_.Now() - t0).micros()));
    depth_gauge_->Set(static_cast<double>(records_produced_) -
                      static_cast<double>(records_consumed_));
  }
}

Status Broker::CreateTopic(const std::string& topic, int partitions) {
  FW_CHECK(partitions > 0);
  if (topics_.count(topic) != 0) {
    return Status::AlreadyExists("topic " + topic + " exists");
  }
  Topic t;
  for (int i = 0; i < partitions; ++i) {
    t.partitions.push_back(std::make_unique<Partition>(sim_));
  }
  topics_.emplace(topic, std::move(t));
  return Status::Ok();
}

Status Broker::DeleteTopic(const std::string& topic) {
  if (topics_.erase(topic) == 0) {
    return Status::NotFound("no topic " + topic);
  }
  return Status::Ok();
}

bool Broker::HasTopic(const std::string& topic) const { return topics_.count(topic) != 0; }

int Broker::PartitionCount(const std::string& topic) const {
  auto it = topics_.find(topic);
  return it == topics_.end() ? 0 : static_cast<int>(it->second.partitions.size());
}

Result<Broker::Partition*> Broker::FindPartition(const std::string& topic, int partition) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    return Status::NotFound("no topic " + topic);
  }
  if (partition < 0 || partition >= static_cast<int>(it->second.partitions.size())) {
    return Status::InvalidArgument("no partition " + std::to_string(partition) + " in " + topic);
  }
  return it->second.partitions[partition].get();
}

Duration Broker::TransferTime(uint64_t bytes) const {
  return Duration::SecondsF(static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec);
}

fwsim::Co<Result<int64_t>> Broker::Produce(const std::string& topic, int partition,
                                           Record record) {
  auto part = FindPartition(topic, partition);
  if (!part.ok()) {
    co_return part.status();
  }
  const fwbase::SimTime t0 = sim_.Now();
  fwobs::ScopedSpan span(tracer_, "bus.produce", "msgbus");
  span.SetAttribute("topic", topic);
  span.SetAttribute("bytes", record.SizeBytes());
  co_await fwsim::Delay(sim_, config_.produce_cost + TransferTime(record.SizeBytes()));
  if (injector_ != nullptr && injector_->Trip(fwfault::FaultKind::kBrokerDelayMessage)) {
    co_await fwsim::Delay(
        sim_, injector_->SampleDelay(fwfault::FaultKind::kBrokerDelayMessage, kDelayFaultMean));
  }
  // No co_await below: the commit (append + metrics + wakeup) is synchronous
  // bookkeeping, which is exactly what the profiler scope attributes.
  FW_PROFILE_SCOPE_ID(profiler_, produce_scope_);
  Partition& p = **part;
  record.offset = static_cast<int64_t>(p.log.size());
  const int64_t offset = record.offset;
  if (injector_ != nullptr && injector_->Trip(fwfault::FaultKind::kBrokerDropMessage)) {
    // acks=1 lie: the producer sees success but the record never lands and
    // waiters are never woken. Consumers must bound their waits.
    co_return offset;
  }
  const bool duplicate =
      injector_ != nullptr && injector_->Trip(fwfault::FaultKind::kBrokerDuplicateMessage);
  p.log.push_back(std::move(record));
  ++records_produced_;
  if (duplicate) {
    Record copy = p.log.back();
    copy.offset = static_cast<int64_t>(p.log.size());
    p.log.push_back(std::move(copy));
    ++records_produced_;
  }
  if (produce_counter_ != nullptr) {
    produce_counter_->Increment();
    produce_latency_->Observe(static_cast<uint64_t>((sim_.Now() - t0).micros()));
    depth_gauge_->Set(static_cast<double>(records_produced_) -
                      static_cast<double>(records_consumed_));
  }
  p.appended.Trigger();
  co_return offset;
}

fwsim::Co<Result<Record>> Broker::ConsumeAt(const std::string& topic, int partition,
                                            int64_t offset) {
  FW_CHECK(offset >= 0);
  auto part = FindPartition(topic, partition);
  if (!part.ok()) {
    co_return part.status();
  }
  const fwbase::SimTime t0 = sim_.Now();
  fwobs::ScopedSpan span(tracer_, "bus.consume", "msgbus");
  span.SetAttribute("topic", topic);
  Partition& p = **part;
  while (static_cast<int64_t>(p.log.size()) <= offset) {
    co_await p.appended.Wait();
  }
  // Copy before suspending: the log vector may grow (and reallocate) while the
  // fetch delay elapses.
  Record record = p.log[static_cast<size_t>(offset)];
  co_await fwsim::Delay(sim_, config_.fetch_cost + TransferTime(record.SizeBytes()));
  RecordConsume(t0);
  co_return record;
}

fwsim::Co<Result<Record>> Broker::ConsumeLast(const std::string& topic, int partition) {
  auto part = FindPartition(topic, partition);
  if (!part.ok()) {
    co_return part.status();
  }
  const fwbase::SimTime t0 = sim_.Now();
  fwobs::ScopedSpan span(tracer_, "bus.consume", "msgbus");
  span.SetAttribute("topic", topic);
  Partition& p = **part;
  while (p.log.empty()) {
    co_await p.appended.Wait();
  }
  // Copy before suspending (see ConsumeAt).
  Record record = p.log.back();
  co_await fwsim::Delay(sim_, config_.fetch_cost + TransferTime(record.SizeBytes()));
  RecordConsume(t0);
  co_return record;
}

fwsim::Co<Result<Record>> Broker::ConsumeLastWithTimeout(const std::string& topic,
                                                         int partition, Duration timeout) {
  auto part = FindPartition(topic, partition);
  if (!part.ok()) {
    co_return part.status();
  }
  const fwbase::SimTime t0 = sim_.Now();
  const fwbase::SimTime deadline = t0 + timeout;
  fwobs::ScopedSpan span(tracer_, "bus.consume", "msgbus");
  span.SetAttribute("topic", topic);
  Partition& p = **part;
  // Poll instead of waiting on `appended`: a record dropped in flight never
  // triggers the event, and a consumer stranded on it would hang the run.
  while (p.log.empty()) {
    if (sim_.Now() >= deadline) {
      co_return Status::DeadlineExceeded("no record in " + topic + " within " +
                                         std::to_string(timeout.millis()) + " ms");
    }
    co_await fwsim::Delay(sim_, kConsumePollInterval);
  }
  // Copy before suspending (see ConsumeAt).
  Record record = p.log.back();
  co_await fwsim::Delay(sim_, config_.fetch_cost + TransferTime(record.SizeBytes()));
  RecordConsume(t0);
  co_return record;
}

Result<int64_t> Broker::EndOffset(const std::string& topic, int partition) const {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    return Status::NotFound("no topic " + topic);
  }
  if (partition < 0 || partition >= static_cast<int>(it->second.partitions.size())) {
    return Status::InvalidArgument("bad partition");
  }
  return static_cast<int64_t>(it->second.partitions[partition]->log.size());
}

}  // namespace fwbus
